"""The emulation engine: Kollaps end-to-end over a simulated cluster.

:class:`EmulationEngine` is the top-level facade a user (or the deployment
generator) drives:

* builds the cluster and places containers,
* assigns IP addresses and installs per-container TCAL chains from the
  pre-computed collapsed topology,
* starts one Emulation Manager per machine, connected by media drivers,
* schedules the dynamic topology swaps,
* exposes the two data planes applications run on — the packet plane
  (:class:`~repro.netstack.kollapsnet.KollapsDataPlane`) and the fluid bulk
  plane (:class:`~repro.netstack.fluid.FluidEngine` with
  :class:`~repro.netstack.fluid.ShapedConstraints`).

Bulk flows created through :meth:`start_flow` automatically record their
usage into the sender's TCAL counters, so the emulation loop sees exactly
what the kernel's netlink counters would report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro import telemetry
from repro.cluster import Cluster
from repro.core.collapse import collapse
from repro.core.dynamic import DynamicTopologyPlan, TopologyState
from repro.core.emucore import EmulationCore
from repro.core.manager import EmulationManager
from repro.metadata.channels import MediaDriver
from repro.netstack.fluid import FluidEngine, FluidFlow, ShapedConstraints
from repro.netstack.kollapsnet import KollapsDataPlane
from repro.sim import Process, RngRegistry, Simulator
from repro.tc.ip import IpAllocator
from repro.tc.tcal import Tcal
from repro.topology.events import EventSchedule
from repro.topology.model import Topology

__all__ = ["EmulationEngine", "EngineConfig"]


@dataclass
class EngineConfig:
    """Tunables of a Kollaps deployment."""

    machines: int = 1
    loop_period: float = 0.050
    seed: int = 0
    congestion_sensitivity: float = 1.0
    container_network_delay: float = 35e-6
    physical_network_delay: float = 80e-6
    fluid_dt: float = 0.010
    # When False, no emulation loop runs: shaping stays at the collapsed
    # path properties (useful for latency-only experiments and ablations).
    enforce_bandwidth_sharing: bool = True
    # §7 future work: publish metadata only when flow state changes,
    # rather than every loop period.
    metadata_on_change_only: bool = False
    # §7 future work: time dilation.  A factor of N means virtual time
    # runs N times slower than the cluster, so emulated link capacities up
    # to N x the physical interconnect are feasible (§6's "beyond the
    # physical links" limitation).  Checked at construction.
    time_dilation: float = 1.0
    # When False, skip the physical-feasibility check entirely (pure
    # simulation studies that don't model a concrete cluster).
    enforce_physical_limits: bool = True


class EmulationEngine:
    """A fully wired Kollaps instance over a simulated cluster."""

    def __init__(self, topology: Topology,
                 schedule: Optional[EventSchedule] = None, *,
                 config: Optional[EngineConfig] = None,
                 placement: Optional[Dict[str, str]] = None) -> None:
        self.config = config or EngineConfig()
        if self.config.time_dilation < 1.0:
            raise ValueError("time dilation factor must be >= 1")
        self.sim = Simulator()
        self.rng = RngRegistry(self.config.seed)
        self.plan = DynamicTopologyPlan(topology, schedule)
        self.current_state: TopologyState = self.plan.initial()

        # --- cluster and placement -------------------------------------
        self.cluster = Cluster(self.config.machines)
        containers = self.plan.all_containers()
        if placement is None:
            self.placement = self.cluster.place_round_robin(containers)
        else:
            for container, machine in placement.items():
                self.cluster.machines[machine].host(container)
            self.placement = dict(placement)
        self.container_indices = {name: index
                                  for index, name in enumerate(containers)}

        # --- addressing and TCALs ---------------------------------------
        self.allocator = IpAllocator()
        for container in containers:
            self.allocator.assign(container)
        self.dataplane = KollapsDataPlane(
            self.sim, placement=self.placement,
            container_network_delay=self.config.container_network_delay,
            physical_network_delay=self.config.physical_network_delay)
        self.tcals: Dict[str, Tcal] = {}
        for container in containers:
            tcal = Tcal(container, self.allocator,
                        rng=self.rng.stream(f"netem:{container}"))
            self.tcals[container] = tcal
            self.dataplane.attach_tcal(container, tcal)

        # --- managers, drivers, cores ------------------------------------
        wide = self._needs_wide_ids()
        self.drivers: Dict[str, MediaDriver] = {}
        self.managers: Dict[str, EmulationManager] = {}
        machine_names = self.cluster.machine_names()
        for index, machine in enumerate(machine_names):
            driver = MediaDriver(
                self.sim, machine, wide_ids=wide,
                network_delay=self.cluster.interconnect_latency)
            self.drivers[machine] = driver
            self.managers[machine] = EmulationManager(
                self.sim, machine, driver, index, self.container_indices,
                period=self.config.loop_period,
                congestion_sensitivity=self.config.congestion_sensitivity,
                update_on_change_only=self.config.metadata_on_change_only)
        for i, first in enumerate(machine_names):
            for second in machine_names[i + 1:]:
                self.drivers[first].connect(self.drivers[second])
        self.cores: Dict[str, EmulationCore] = {}
        for container in containers:
            machine = self.placement[container]
            core = EmulationCore(container, self.tcals[container])
            self.cores[container] = core
            self.managers[machine].add_core(core)

        # --- fluid bulk plane --------------------------------------------
        self.fluid = FluidEngine(
            self.sim,
            ShapedConstraints(self.tcals.get, self._current_rtt),
            dt=self.config.fluid_dt, rng=self.rng,
            usage_recorder=self._record_fluid_usage,
            pressure_recorder=self._record_fluid_pressure)

        # --- initial state + dynamic swaps + loops ------------------------
        if self.config.enforce_physical_limits:
            self._validate_physical_feasibility()
        self._apply_state(self.plan.initial())
        for change_time in self.plan.change_times():
            self.sim.at(change_time,
                        lambda t=change_time: self._apply_state(
                            self.plan.state_at(t)),
                        priority=-10, label="topology-swap")
        self._loop_processes: List[Process] = []
        if self.config.enforce_bandwidth_sharing:
            for manager in self.managers.values():
                self._loop_processes.append(Process(
                    self.sim, self.config.loop_period,
                    manager.run_loop_iteration, name=f"em:{manager.machine}",
                    start_after=self.config.loop_period, priority=5))

    # ------------------------------------------------------------ plumbing
    def _validate_physical_feasibility(self) -> None:
        """§6: emulated capacity must fit the cluster, unless dilated.

        "It is impossible to emulate a link of 10 Gb/s if Kollaps is
        running on a cluster with 1 Gb/s connections."  Time dilation (§7)
        relaxes the bound by its factor: virtual time runs slower, so a
        dilated 100 Gb/s link only needs 100/TDF Gb/s of real capacity.
        """
        budget = self.cluster.interconnect_rate * self.config.time_dilation
        for state in self.plan.states:
            for link in state.topology.links():
                bandwidth = link.properties.bandwidth
                if bandwidth != float("inf") and bandwidth > budget:
                    raise ValueError(
                        f"link {link.key} asks for {bandwidth / 1e9:.1f} Gb/s"
                        f" but the cluster interconnect provides "
                        f"{self.cluster.interconnect_rate / 1e9:.1f} Gb/s"
                        f" (time dilation {self.config.time_dilation:g}x);"
                        " raise EngineConfig.time_dilation or disable"
                        " enforce_physical_limits")

    def apply_event_online(self, event) -> None:
        """§6 "Interactivity": apply a dynamic event *now*, online.

        Unlike the pre-computed plan this recomputes the collapse at event
        time — exact but slow for large graphs, which is the accuracy/
        interactivity trade-off the paper describes.  The collapse memo
        softens it considerably: a capacity-only event re-composes path
        properties over the cached shortest paths instead of re-running
        Dijkstra, and an event that restores an earlier structure (a link
        flapping back up) is a straight cache hit.  The new state is
        installed in every TCAL and manager immediately.
        """
        with telemetry.span("engine.online_event",
                            event=type(event).__name__):
            mutated = self.current_state.topology.copy()
            event.apply(mutated)
            state = TopologyState(
                time=self.sim.now,
                topology=mutated,
                collapsed=collapse(mutated),
                capacities={link.link_id: link.properties.bandwidth
                            for link in mutated.links()})
            self._apply_state(state)

    def _needs_wide_ids(self) -> bool:
        for state in self.plan.states:
            if len(state.topology.container_names()) > 256:
                return True
            if any(link.link_id > 255 for link in state.topology.links()):
                return True
        return False

    def _current_rtt(self, source: str, destination: str) -> float:
        collapsed = self.current_state.collapsed
        forward = collapsed.path(source, destination)
        backward = collapsed.path(destination, source)
        if forward is None:
            return 0.1
        return forward.latency + (backward.latency if backward
                                  else forward.latency)

    def _record_fluid_usage(self, flow: FluidFlow, bits: float) -> None:
        tcal = self.tcals.get(flow.source)
        if tcal is None or flow.destination not in tcal.destinations():
            return
        tcal.shaping_for(flow.destination).record(bits)

    def _record_fluid_pressure(self, flow: FluidFlow, bits: float) -> None:
        tcal = self.tcals.get(flow.source)
        if tcal is None or flow.destination not in tcal.destinations():
            return
        tcal.shaping_for(flow.destination).record_refused(bits)

    def _apply_state(self, state: TopologyState) -> None:
        """Install a topology snapshot into every TCAL and manager."""
        trace = telemetry.span("engine.apply_state",
                               t=round(state.time, 6))
        self.current_state = state
        collapsed = state.collapsed
        installed = 0
        removed = 0
        present: Dict[str, set] = {}
        for path in collapsed.paths():
            present.setdefault(path.source, set()).add(path.destination)
            tcal = self.tcals[path.source]
            properties = path.properties
            tcal.install_destination(
                path.destination,
                latency=properties.latency, jitter=properties.jitter,
                loss=properties.loss, bandwidth=properties.bandwidth)
            installed += 1
        # Destinations that no longer exist lose their chains (packets to
        # them are dropped, as with a removed route).
        for container, tcal in self.tcals.items():
            wanted = present.get(container, set())
            for destination in tcal.destinations():
                if destination not in wanted:
                    tcal.remove_destination(destination)
                    removed += 1
        for manager in self.managers.values():
            manager.install_state(collapsed, dict(state.capacities))
        if telemetry.enabled():
            registry = telemetry.metrics
            registry.counter("engine.state_swaps").inc()
            registry.counter("engine.chains_touched").inc(installed + removed)
            trace.set(installed=installed, removed=removed)
        trace.finish()

    # ------------------------------------------------------------ user API
    def start_flow(self, key: Hashable, source: str, destination: str, *,
                   protocol: str = "tcp", congestion_control: str = "cubic",
                   demand: float = float("inf"),
                   size_bits: Optional[float] = None,
                   start_time: float = 0.0) -> FluidFlow:
        """Launch a bulk flow (iperf-style) on the fluid plane."""
        flow = FluidFlow(key, source, destination, protocol=protocol,
                         congestion_control=congestion_control,
                         demand=demand, size_bits=size_bits,
                         start_time=start_time)
        return self.fluid.add_flow(flow)

    def stop_flow(self, key: Hashable) -> None:
        self.fluid.remove_flow(key)

    def run(self, until: float) -> None:
        self.sim.run(until=until)

    # ------------------------------------------------------------ telemetry
    def metadata_stats(self) -> Dict[str, "object"]:
        return {machine: driver.stats
                for machine, driver in self.drivers.items()}

    def total_metadata_wire_bytes(self) -> int:
        return sum(driver.stats.wire_bytes_sent()
                   for driver in self.drivers.values())

    def metadata_rate_bytes_per_s(self) -> float:
        if self.sim.now <= 0:
            return 0.0
        return self.total_metadata_wire_bytes() / self.sim.now
