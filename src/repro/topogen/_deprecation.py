"""Shared deprecation plumbing for the PR-1 legacy shims.

Used by the ``repro.topogen.*_topology`` wrappers and the
``repro.topology.parse_*`` functions alike, so the warning format (and
its ``stacklevel``) lives in exactly one place.
"""

from __future__ import annotations

import warnings

__all__ = ["warn_shim"]


def warn_shim(old: str, new: str, *,
              module: str = "repro.scenario.topologies",
              stacklevel: int = 3) -> None:
    """Emit the one-line DeprecationWarning every legacy shim carries.

    ``stacklevel`` counts from this frame to the legacy caller: 3 when
    the shim calls here directly, one more per intermediate helper.
    """
    warnings.warn(
        f"{old} is deprecated; use {new} from the unified Scenario API "
        f"({module})", DeprecationWarning, stacklevel=stacklevel)
