"""Barabási–Albert scale-free topologies (deprecation shim, §5.5).

The generator now lives in :func:`repro.scenario.topologies.scale_free`,
which returns a composable :class:`~repro.scenario.Scenario` builder; this
wrapper compiles it for legacy call sites.  Construction remains fully
deterministic for a given seed.
"""

from __future__ import annotations

from repro.scenario import topologies as _topologies
from repro.topogen._deprecation import warn_shim
from repro.topology import Topology

__all__ = ["scale_free_topology"]


def scale_free_topology(total_nodes: int, *, seed: int = 0,
                        switch_fraction: float = 1.0 / 3.0,
                        attachment_edges: int = 2,
                        backbone_bandwidth: float = 1e9,
                        access_bandwidth: float = 100e6,
                        backbone_latency_range=(0.002, 0.010),
                        access_latency_range=(0.001, 0.002)) -> Topology:
    """Generate a scale-free topology with ``total_nodes`` elements.

    ``total_nodes`` counts services plus bridges, matching the paper's
    "topology size" column in Table 4 (1000 → 666 end-nodes + 334 switches).
    """
    warn_shim("repro.topogen.scale_free_topology", "scale_free()")
    return _topologies.scale_free(
        total_nodes, seed=seed, switch_fraction=switch_fraction,
        attachment_edges=attachment_edges,
        backbone_bandwidth=backbone_bandwidth,
        access_bandwidth=access_bandwidth,
        backbone_latency_range=backbone_latency_range,
        access_latency_range=access_latency_range).compile().topology
