"""Barabási–Albert scale-free topologies (§5.5).

The paper evaluates latency accuracy on "large-scale topologies generated
using the preferential attachment algorithm [26]", with roughly two thirds
of the elements being end-nodes and one third switches (1000 elements = 666
nodes + 334 switches).  We reproduce that construction:

1. grow a preferential-attachment backbone among the switches,
2. attach each end-node to a switch chosen preferentially by degree.

Link latencies are drawn from seeded uniform ranges (backbone 2–10 ms,
access 1–2 ms), giving minimum theoretical RTTs in the paper's 10–22 ms
ballpark.  The generator is fully deterministic for a given seed.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.topology import Bridge, LinkProperties, Service, Topology

__all__ = ["scale_free_topology"]


def scale_free_topology(total_nodes: int, *, seed: int = 0,
                        switch_fraction: float = 1.0 / 3.0,
                        attachment_edges: int = 2,
                        backbone_bandwidth: float = 1e9,
                        access_bandwidth: float = 100e6,
                        backbone_latency_range=(0.002, 0.010),
                        access_latency_range=(0.001, 0.002)) -> Topology:
    """Generate a scale-free topology with ``total_nodes`` elements.

    ``total_nodes`` counts services plus bridges, matching the paper's
    "topology size" column in Table 4 (1000 → 666 end-nodes + 334 switches).
    """
    if total_nodes < 4:
        raise ValueError("scale-free topology needs at least 4 elements")
    rng = random.Random(seed)
    switch_count = max(2, round(total_nodes * switch_fraction))
    node_count = total_nodes - switch_count

    topology = Topology(f"scale-free-{total_nodes}")
    switches = [f"sw{i}" for i in range(switch_count)]
    for name in switches:
        topology.add_bridge(Bridge(name))

    # Preferential-attachment backbone (Barabási–Albert with m edges).
    # `attachment_targets` holds one entry per incident edge, so sampling
    # uniformly from it is degree-proportional sampling.
    attachment_targets = [switches[0], switches[1]]
    _backbone_link(topology, switches[0], switches[1], rng,
                   backbone_latency_range, backbone_bandwidth)
    for index in range(2, switch_count):
        new_switch = switches[index]
        edges = min(attachment_edges, index)
        chosen = set()
        while len(chosen) < edges:
            chosen.add(rng.choice(attachment_targets))
        for target in sorted(chosen):
            _backbone_link(topology, new_switch, target, rng,
                           backbone_latency_range, backbone_bandwidth)
            attachment_targets.append(target)
            attachment_targets.append(new_switch)

    # End-nodes attach preferentially, like stub networks joining the core.
    for index in range(node_count):
        name = f"n{index}"
        topology.add_service(Service(name))
        target = rng.choice(attachment_targets)
        latency = rng.uniform(*access_latency_range)
        topology.add_link(name, target,
                          LinkProperties(latency=latency,
                                         bandwidth=access_bandwidth))
    return topology


def _backbone_link(topology: Topology, source: str, destination: str,
                   rng: random.Random, latency_range, bandwidth: float) -> None:
    latency = rng.uniform(*latency_range)
    topology.add_link(source, destination,
                      LinkProperties(latency=latency, bandwidth=bandwidth))
