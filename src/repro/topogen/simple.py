"""Elementary topology shapes used across the micro-benchmarks."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.topology import Bridge, LinkProperties, Service, Topology

__all__ = ["point_to_point_topology", "dumbbell_topology", "star_topology",
           "tree_topology"]


def point_to_point_topology(bandwidth: float, latency: float = 0.001, *,
                            jitter: float = 0.0, loss: float = 0.0,
                            client: str = "client",
                            server: str = "server") -> Topology:
    """Two services joined by a single switch (the Table 2 / §5.1 shape).

    ``latency``, ``jitter`` and ``loss`` are end-to-end: each half link gets
    a share such that path composition (sum, root-sum-square, 1-product)
    recovers the requested values.
    """
    topology = Topology("point-to-point")
    topology.add_service(Service(client, image="iperf"))
    topology.add_service(Service(server, image="iperf"))
    topology.add_bridge(Bridge("s0"))
    half = LinkProperties(latency=latency / 2.0, bandwidth=bandwidth,
                          jitter=jitter / 2.0 ** 0.5,
                          loss=1.0 - (1.0 - loss) ** 0.5)
    topology.add_link(client, "s0", half)
    topology.add_link("s0", server, half)
    return topology


def dumbbell_topology(pairs: int, *, access_bandwidth: float = 1e9,
                      shared_bandwidth: float = 50e6,
                      access_latency: float = 0.001,
                      shared_latency: float = 0.010) -> Topology:
    """``pairs`` clients on one side, ``pairs`` servers on the other.

    All traffic crosses the single shared link between the two bridges —
    the §5.2 metadata-scalability workload.
    """
    if pairs < 1:
        raise ValueError("a dumbbell needs at least one pair")
    topology = Topology(f"dumbbell-{pairs}")
    topology.add_bridge(Bridge("left"))
    topology.add_bridge(Bridge("right"))
    topology.add_link("left", "right",
                      LinkProperties(latency=shared_latency,
                                     bandwidth=shared_bandwidth))
    access = LinkProperties(latency=access_latency,
                            bandwidth=access_bandwidth)
    for index in range(pairs):
        client = f"client{index}"
        server = f"server{index}"
        topology.add_service(Service(client, image="iperf"))
        topology.add_service(Service(server, image="iperf"))
        topology.add_link(client, "left", access)
        topology.add_link("right", server, access)
    return topology


def star_topology(leaves: Sequence[str], *, bandwidth: float = 1e9,
                  latency: float = 0.001,
                  hub: str = "hub") -> Topology:
    """All ``leaves`` hang off one central bridge."""
    topology = Topology("star")
    topology.add_bridge(Bridge(hub))
    properties = LinkProperties(latency=latency, bandwidth=bandwidth)
    for leaf in leaves:
        topology.add_service(Service(leaf))
        topology.add_link(leaf, hub, properties)
    return topology


def tree_topology(depth: int, fanout: int, *, bandwidth: float = 1e9,
                  latency: float = 0.001) -> Topology:
    """A complete switch tree with services at the leaves.

    The root and internal nodes are bridges named ``b<level>.<index>``;
    leaves are services named ``leaf<index>``.
    """
    if depth < 1:
        raise ValueError("tree depth must be >= 1")
    topology = Topology(f"tree-d{depth}-f{fanout}")
    properties = LinkProperties(latency=latency, bandwidth=bandwidth)
    topology.add_bridge(Bridge("b0.0"))
    previous = ["b0.0"]
    for level in range(1, depth):
        current = []
        for parent_index, parent in enumerate(previous):
            for child in range(fanout):
                name = f"b{level}.{parent_index * fanout + child}"
                topology.add_bridge(Bridge(name))
                topology.add_link(parent, name, properties)
                current.append(name)
        previous = current
    leaf_index = 0
    for parent in previous:
        for _ in range(fanout):
            name = f"leaf{leaf_index}"
            topology.add_service(Service(name))
            topology.add_link(parent, name, properties)
            leaf_index += 1
    return topology
