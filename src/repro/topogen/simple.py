"""Elementary topology shapes (deprecation shims over ``repro.scenario``).

The generators now live in :mod:`repro.scenario.topologies`, where each
returns a composable :class:`~repro.scenario.Scenario` builder; these
wrappers compile the builder and return the bare topology for legacy call
sites.
"""

from __future__ import annotations

from typing import Sequence

from repro.scenario import topologies as _topologies
from repro.topogen._deprecation import warn_shim
from repro.topology import Topology

__all__ = ["point_to_point_topology", "dumbbell_topology", "star_topology",
           "tree_topology"]


def point_to_point_topology(bandwidth: float, latency: float = 0.001, *,
                            jitter: float = 0.0, loss: float = 0.0,
                            client: str = "client",
                            server: str = "server") -> Topology:
    """Two services joined by a single switch (the Table 2 / §5.1 shape)."""
    warn_shim("repro.topogen.point_to_point_topology", "point_to_point()")
    return _topologies.point_to_point(
        bandwidth, latency, jitter=jitter, loss=loss, client=client,
        server=server).compile().topology


def dumbbell_topology(pairs: int, *, access_bandwidth: float = 1e9,
                      shared_bandwidth: float = 50e6,
                      access_latency: float = 0.001,
                      shared_latency: float = 0.010) -> Topology:
    """``pairs`` client/server pairs sharing one bottleneck link (§5.2)."""
    warn_shim("repro.topogen.dumbbell_topology", "dumbbell()")
    return _topologies.dumbbell(
        pairs, access_bandwidth=access_bandwidth,
        shared_bandwidth=shared_bandwidth, access_latency=access_latency,
        shared_latency=shared_latency).compile().topology


def star_topology(leaves: Sequence[str], *, bandwidth: float = 1e9,
                  latency: float = 0.001, hub: str = "hub") -> Topology:
    """All ``leaves`` hang off one central bridge."""
    warn_shim("repro.topogen.star_topology", "star()")
    return _topologies.star(leaves, bandwidth=bandwidth, latency=latency,
                            hub=hub).compile().topology


def tree_topology(depth: int, fanout: int, *, bandwidth: float = 1e9,
                  latency: float = 0.001) -> Topology:
    """A complete switch tree with services at the leaves."""
    warn_shim("repro.topogen.tree_topology", "tree()")
    return _topologies.tree(depth, fanout, bandwidth=bandwidth,
                            latency=latency).compile().topology
