"""Amazon EC2 inter-region latency and jitter data plus topology builders.

Two data sets are embedded:

* :data:`AWS_REGION_LATENCY_FROM_US_EAST_1` — the paper's Table 3 exactly:
  one-way latency (ms) and measured jitter (ms) from ``us-east-1`` to twelve
  regions.
* :data:`INTER_REGION_RTT_MS` — round-trip latencies between the five
  regions of the BFT-SMaRt/Wheat experiment ([78], Table II).  The original
  table is not redistributable; the values below are the published
  measurements rounded to the millisecond and are only used to shape the
  Figure 9/10 workloads.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.topology import Bridge, LinkProperties, Service, Topology

__all__ = [
    "AWS_REGION_LATENCY_FROM_US_EAST_1",
    "INTER_REGION_RTT_MS",
    "aws_star_topology",
    "aws_mesh_topology",
]

# Table 3: destination -> (one-way latency ms, measured EC2 jitter ms).
AWS_REGION_LATENCY_FROM_US_EAST_1: Dict[str, Tuple[float, float]] = {
    "us-east-1": (6.0, 0.5607),
    "us-east-2": (17.0, 1.2411),
    "ca-central-1": (24.0, 1.2451),
    "us-west-1": (70.0, 1.3627),
    "eu-west-1": (78.0, 1.2000),
    "eu-west-2": (85.0, 1.6609),
    "eu-north-1": (119.0, 1.2850),
    "ap-northeast-1": (170.0, 1.4217),
    "ap-south-1": (194.0, 2.0233),
    "ap-northeast-2": (200.0, 1.8364),
    "ap-southeast-2": (208.0, 1.4277),
    "ap-southeast-1": (249.0, 1.3728),
}

# Round-trip latency (ms) between the five regions of [78]; symmetric.
_WHEAT_REGIONS = ("virginia", "oregon", "ireland", "saopaulo", "sydney")
INTER_REGION_RTT_MS: Dict[Tuple[str, str], float] = {
    ("virginia", "oregon"): 81.0,
    ("virginia", "ireland"): 81.0,
    ("virginia", "saopaulo"): 146.0,
    ("virginia", "sydney"): 229.0,
    ("oregon", "ireland"): 161.0,
    ("oregon", "saopaulo"): 182.0,
    ("oregon", "sydney"): 161.0,
    ("ireland", "saopaulo"): 191.0,
    ("ireland", "sydney"): 309.0,
    ("saopaulo", "sydney"): 326.0,
}

# Additional regions used by the Cassandra deployment (§5.6) and the
# what-if scenario (Figure 11): Frankfurt <-> Sydney and Frankfurt <-> Seoul.
INTER_REGION_RTT_MS.update({
    ("frankfurt", "sydney"): 290.0,
    ("frankfurt", "seoul"): 145.0,  # the "halved latency" move of Figure 11
    ("frankfurt", "virginia"): 89.0,
    ("frankfurt", "ireland"): 25.0,
})


def region_rtt(a: str, b: str) -> float:
    """Symmetric lookup into :data:`INTER_REGION_RTT_MS` (seconds)."""
    if a == b:
        return 0.002  # intra-region round trip
    value = INTER_REGION_RTT_MS.get((a, b)) or INTER_REGION_RTT_MS.get((b, a))
    if value is None:
        raise KeyError(f"no RTT data between {a!r} and {b!r}")
    return value / 1000.0


def aws_star_topology(*, bandwidth: float = 1e9,
                      source: str = "us-east-1",
                      symmetric_jitter: bool = False) -> Topology:
    """One probe service per Table 3 destination, all reached from ``source``.

    Each destination hangs off its own bridge so every pair
    ``(probe, target)`` traverses exactly the Table 3 latency and jitter.
    By default jitter rides only the forward direction, so an echo RTT's
    standard deviation equals the configured value (the Table 3 EC2 column
    was itself measured from ping RTTs); ``symmetric_jitter=True`` jitters
    both directions, composing to sqrt(2) of the configured value.
    """
    topology = Topology("aws-star")
    topology.add_service(Service("probe", image="ping"))
    topology.add_bridge(Bridge("igw"))
    topology.add_link("probe", "igw",
                      LinkProperties(latency=0.0001, bandwidth=bandwidth))
    for region, (latency_ms, jitter_ms) in \
            AWS_REGION_LATENCY_FROM_US_EAST_1.items():
        service = f"target-{region}"
        topology.add_service(Service(service, image="ping"))
        forward = LinkProperties(latency=latency_ms / 1000.0,
                                 bandwidth=bandwidth,
                                 jitter=jitter_ms / 1000.0)
        backward = forward if symmetric_jitter else LinkProperties(
            latency=latency_ms / 1000.0, bandwidth=bandwidth)
        topology.add_link("igw", service, forward,
                          down_properties=backward)
    return topology


def aws_mesh_topology(regions: Sequence[str], services_per_region: int = 1, *,
                      bandwidth: float = 1e9, jitter_ms: float = 1.5,
                      service_prefix: str = "node",
                      rtt_override: Optional[Dict[Tuple[str, str], float]] = None,
                      rtt_scale: float = 1.0) -> Topology:
    """A geo-distributed deployment: one bridge per region, full mesh between.

    Inter-region links carry half the region pair's RTT in each direction;
    ``rtt_scale`` supports the Figure 11 what-if (halved latencies) and
    ``rtt_override`` lets callers substitute measured matrices.  Services are
    named ``{prefix}-{region}-{index}``.
    """
    topology = Topology("aws-mesh")
    for region in regions:
        topology.add_bridge(Bridge(f"br-{region}"))
        for index in range(services_per_region):
            name = f"{service_prefix}-{region}-{index}"
            topology.add_service(Service(name))
            topology.add_link(name, f"br-{region}",
                              LinkProperties(latency=0.0005,
                                             bandwidth=bandwidth))
    for i, region_a in enumerate(regions):
        for region_b in regions[i + 1:]:
            if rtt_override is not None:
                rtt = (rtt_override.get((region_a, region_b))
                       or rtt_override[(region_b, region_a)]) / 1000.0
            else:
                rtt = region_rtt(region_a, region_b)
            rtt *= rtt_scale
            topology.add_link(
                f"br-{region_a}", f"br-{region_b}",
                LinkProperties(latency=rtt / 2.0, bandwidth=bandwidth,
                               jitter=jitter_ms / 1000.0 / 2.0))
    return topology
