"""Amazon EC2 topology builders (deprecation shims over ``repro.scenario``).

The latency/jitter data sets and the generators now live in
:mod:`repro.scenario.topologies` (re-exported here unchanged):

* :data:`AWS_REGION_LATENCY_FROM_US_EAST_1` — the paper's Table 3 exactly:
  one-way latency (ms) and measured jitter (ms) from ``us-east-1`` to twelve
  regions.
* :data:`INTER_REGION_RTT_MS` — round-trip latencies between the five
  regions of the BFT-SMaRt/Wheat experiment ([78], Table II), rounded to
  the millisecond, used only to shape the Figure 9/10 workloads.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.scenario import topologies as _topologies
from repro.topogen._deprecation import warn_shim
from repro.scenario.topologies import (  # noqa: F401  (re-exported data)
    AWS_REGION_LATENCY_FROM_US_EAST_1,
    INTER_REGION_RTT_MS,
    region_rtt,
)
from repro.topology import Topology

__all__ = [
    "AWS_REGION_LATENCY_FROM_US_EAST_1",
    "INTER_REGION_RTT_MS",
    "aws_star_topology",
    "aws_mesh_topology",
]


def aws_star_topology(*, bandwidth: float = 1e9,
                      source: str = "us-east-1",
                      symmetric_jitter: bool = False) -> Topology:
    """One probe service per Table 3 destination, all reached from ``source``."""
    warn_shim("repro.topogen.aws_star_topology", "aws_star()")
    return _topologies.aws_star(
        bandwidth=bandwidth, source=source,
        symmetric_jitter=symmetric_jitter).compile().topology


def aws_mesh_topology(regions: Sequence[str], services_per_region: int = 1, *,
                      bandwidth: float = 1e9, jitter_ms: float = 1.5,
                      service_prefix: str = "node",
                      rtt_override: Optional[Dict[Tuple[str, str], float]] = None,
                      rtt_scale: float = 1.0) -> Topology:
    """A geo-distributed deployment: one bridge per region, full mesh between."""
    warn_shim("repro.topogen.aws_mesh_topology", "aws_mesh()")
    return _topologies.aws_mesh(
        regions, services_per_region, bandwidth=bandwidth,
        jitter_ms=jitter_ms, service_prefix=service_prefix,
        rtt_override=rtt_override, rtt_scale=rtt_scale).compile().topology
