"""Data-center topology generators (deprecation shims over ``repro.scenario``).

The paper positions Kollaps for WAN emulation and names data-center
environments as the time-dilation future-work target (§6/§7).  The
generators now live in :mod:`repro.scenario.topologies`:

* :func:`repro.scenario.topologies.fat_tree` — the canonical k-ary fat-tree
  [Al-Fares et al., SIGCOMM'08],
* :func:`repro.scenario.topologies.jellyfish` — a random regular graph of
  top-of-rack switches [Singla et al., NSDI'12]; seeded and deterministic.
"""

from __future__ import annotations

from typing import Optional

from repro.scenario import topologies as _topologies
from repro.topogen._deprecation import warn_shim
from repro.topology import Topology

__all__ = ["fat_tree_topology", "jellyfish_topology"]


def fat_tree_topology(k: int, *, bandwidth: float = 10e9,
                      latency: float = 25e-6,
                      hosts_per_edge: Optional[int] = None) -> Topology:
    """A k-ary fat-tree with hosts attached to the edge layer."""
    warn_shim("repro.topogen.fat_tree_topology", "fat_tree()")
    return _topologies.fat_tree(
        k, bandwidth=bandwidth, latency=latency,
        hosts_per_edge=hosts_per_edge).compile().topology


def jellyfish_topology(switches: int, degree: int, hosts_per_switch: int = 1,
                       *, bandwidth: float = 10e9, latency: float = 25e-6,
                       seed: int = 0) -> Topology:
    """A jellyfish: random ``degree``-regular switch graph, hosts attached."""
    warn_shim("repro.topogen.jellyfish_topology", "jellyfish()")
    return _topologies.jellyfish(
        switches, degree, hosts_per_switch, bandwidth=bandwidth,
        latency=latency, seed=seed).compile().topology
