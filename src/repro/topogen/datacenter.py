"""Data-center topology generators: fat-tree and jellyfish.

The paper positions Kollaps for WAN emulation and names data-center
environments as the time-dilation future-work target (§6/§7).  These
generators provide the standard DC shapes for such studies:

* :func:`fat_tree_topology` — the canonical k-ary fat-tree [Al-Fares et
  al., SIGCOMM'08]: ``k`` pods of ``k/2`` edge and ``k/2`` aggregation
  switches, ``(k/2)^2`` cores, hosts on the edge; full bisection
  bandwidth when every link has equal capacity.
* :func:`jellyfish_topology` — a random regular graph of top-of-rack
  switches [Singla et al., NSDI'12]; degree-bounded, seeded and
  deterministic.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.topology import Bridge, LinkProperties, Service, Topology

__all__ = ["fat_tree_topology", "jellyfish_topology"]


def fat_tree_topology(k: int, *, bandwidth: float = 10e9,
                      latency: float = 25e-6,
                      hosts_per_edge: Optional[int] = None) -> Topology:
    """A k-ary fat-tree with hosts attached to the edge layer.

    ``k`` must be even.  ``hosts_per_edge`` defaults to ``k/2`` (the full
    fat-tree); smaller values thin out the host layer while keeping the
    switching fabric intact.
    """
    if k < 2 or k % 2:
        raise ValueError(f"fat-tree arity must be even and >= 2, got {k}")
    half = k // 2
    if hosts_per_edge is None:
        hosts_per_edge = half
    if not 0 < hosts_per_edge <= half:
        raise ValueError(
            f"hosts_per_edge must be in 1..{half}, got {hosts_per_edge}")
    topology = Topology(f"fat-tree-k{k}")
    properties = LinkProperties(latency=latency, bandwidth=bandwidth)

    cores = []
    for index in range(half * half):
        core = f"core{index}"
        topology.add_bridge(Bridge(core))
        cores.append(core)

    host_index = 0
    for pod in range(k):
        aggregations = []
        for a in range(half):
            name = f"p{pod}-agg{a}"
            topology.add_bridge(Bridge(name))
            aggregations.append(name)
            # Each aggregation switch connects to `half` cores: the a-th
            # aggregation switch uses cores [a*half, (a+1)*half).
            for c in range(half):
                topology.add_link(name, cores[a * half + c], properties)
        for e in range(half):
            edge = f"p{pod}-edge{e}"
            topology.add_bridge(Bridge(edge))
            for aggregation in aggregations:
                topology.add_link(edge, aggregation, properties)
            for _ in range(hosts_per_edge):
                host = f"h{host_index}"
                host_index += 1
                topology.add_service(Service(host, image="workload"))
                topology.add_link(host, edge, properties)
    return topology


def jellyfish_topology(switches: int, degree: int, hosts_per_switch: int = 1,
                       *, bandwidth: float = 10e9, latency: float = 25e-6,
                       seed: int = 0) -> Topology:
    """A jellyfish: random ``degree``-regular switch graph, hosts attached.

    Uses the standard incremental construction: repeatedly join random
    pairs of switches with free ports; when stuck, break an existing link
    to free ports up.  Deterministic for a given ``seed``.
    """
    if switches < degree + 1:
        raise ValueError("need more switches than the degree")
    if degree < 2:
        raise ValueError(f"degree must be >= 2, got {degree}")
    rng = random.Random(seed)
    topology = Topology(f"jellyfish-s{switches}-d{degree}")
    properties = LinkProperties(latency=latency, bandwidth=bandwidth)

    names = [f"sw{index}" for index in range(switches)]
    for name in names:
        topology.add_bridge(Bridge(name))

    free = {name: degree for name in names}
    edges = set()

    def connect(first: str, second: str) -> None:
        edges.add((min(first, second), max(first, second)))
        topology.add_link(first, second, properties)
        free[first] -= 1
        free[second] -= 1

    def disconnect(first: str, second: str) -> None:
        edges.discard((min(first, second), max(first, second)))
        topology.remove_link(first, second)
        free[first] += 1
        free[second] += 1

    stuck = 0
    while True:
        candidates = [name for name in names if free[name] > 0]
        open_pairs = [(a, b) for i, a in enumerate(candidates)
                      for b in candidates[i + 1:]
                      if (a, b) not in edges and (b, a) not in edges]
        if not open_pairs:
            # Fewer than two joinable port owners left: rewire if a node
            # still has 2+ free ports, else done.
            rich = [name for name in candidates if free[name] >= 2]
            if not rich or not edges or stuck > switches * degree:
                break
            stuck += 1
            node = rng.choice(rich)

            def undirected(first: str, second: str):
                return (min(first, second), max(first, second))

            # Rewire an edge neither endpoint of which already touches
            # the node (otherwise reconnecting would duplicate a link).
            rewirable = [edge for edge in sorted(edges)
                         if node not in edge
                         and undirected(node, edge[0]) not in edges
                         and undirected(node, edge[1]) not in edges]
            if not rewirable:
                continue
            victim = rng.choice(rewirable)
            disconnect(*victim)
            connect(node, victim[0])
            connect(node, victim[1])
            continue
        stuck = 0
        connect(*rng.choice(sorted(open_pairs)))

    host_index = 0
    for name in names:
        for _ in range(hosts_per_switch):
            host = f"h{host_index}"
            host_index += 1
            topology.add_service(Service(host, image="workload"))
            topology.add_link(host, name, properties)
    return topology
