"""The decentralized-throttling topology of §5.4 (deprecation shim).

Six clients (C1–C6), three bridges (B1–B3) and six servers (S1–S6):

* C1, C2, C3 attach to B1 with 50/50/10 Mb/s at 10/5/5 ms,
* C4, C5, C6 attach to B2 with the same profile,
* every server attaches to B3 with 50 Mb/s at 5 ms,
* B1—B2 is 50 Mb/s at 10 ms, B2—B3 is 100 Mb/s at 10 ms.

The generator now lives in :func:`repro.scenario.topologies.throttling`;
client ``ci`` talks to server ``si`` and the staggered arrivals produce
the analytic share schedule of ``benchmarks/test_fig8_throttling.py``.
"""

from __future__ import annotations

from repro.scenario import topologies as _topologies
from repro.topogen._deprecation import warn_shim
from repro.scenario.topologies import CLIENT_ACCESS_PROFILE  # noqa: F401
from repro.topology import Topology

__all__ = ["throttling_topology", "CLIENT_ACCESS_PROFILE"]


def throttling_topology() -> Topology:
    warn_shim("repro.topogen.throttling_topology", "throttling()")
    return _topologies.throttling().compile().topology
