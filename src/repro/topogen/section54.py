"""The decentralized-throttling topology of §5.4 (Figure 8).

Six clients (C1–C6), three bridges (B1–B3) and six servers (S1–S6):

* C1, C2, C3 attach to B1 with 50/50/10 Mb/s at 10/5/5 ms,
* C4, C5, C6 attach to B2 with the same profile,
* every server attaches to B3 with 50 Mb/s at 5 ms,
* B1—B2 is 50 Mb/s at 10 ms, B2—B3 is 100 Mb/s at 10 ms.

Client ``ci`` talks to server ``si``; the staggered arrivals produce the
analytic share schedule reproduced in ``benchmarks/test_fig8_throttling.py``.
"""

from __future__ import annotations

from repro.topology import Bridge, LinkProperties, Service, Topology

__all__ = ["throttling_topology", "CLIENT_ACCESS_PROFILE"]

# (bandwidth Mb/s, latency ms) for clients 1..3 on each side.
CLIENT_ACCESS_PROFILE = ((50e6, 0.010), (50e6, 0.005), (10e6, 0.005))


def throttling_topology() -> Topology:
    topology = Topology("section54")
    for name in ("b1", "b2", "b3"):
        topology.add_bridge(Bridge(name))
    for index in range(1, 7):
        topology.add_service(Service(f"c{index}", image="iperf-client"))
        topology.add_service(Service(f"s{index}", image="iperf-server"))
    # Clients 1-3 on B1, clients 4-6 on B2, same access profile.
    for offset, bridge in ((0, "b1"), (3, "b2")):
        for position, (bandwidth, latency) in enumerate(CLIENT_ACCESS_PROFILE):
            client = f"c{offset + position + 1}"
            topology.add_link(client, bridge,
                              LinkProperties(latency=latency,
                                             bandwidth=bandwidth))
    for index in range(1, 7):
        topology.add_link(f"s{index}", "b3",
                          LinkProperties(latency=0.005, bandwidth=50e6))
    topology.add_link("b1", "b2",
                      LinkProperties(latency=0.010, bandwidth=50e6))
    topology.add_link("b2", "b3",
                      LinkProperties(latency=0.010, bandwidth=100e6))
    return topology
