"""Topology generators for the evaluation workloads.

* :mod:`repro.topogen.simple` — point-to-point, dumbbell, star and tree
  shapes used by the micro-benchmarks (§5.1–5.3),
* :mod:`repro.topogen.scale_free` — Barabási–Albert preferential-attachment
  Internet-like topologies (§5.5, Table 4),
* :mod:`repro.topogen.aws` — Amazon EC2 inter-region latency/jitter data and
  geo-distributed topology builders (Table 3, §5.6),
* :mod:`repro.topogen.section54` — the six-client/three-bridge/six-server
  topology of the decentralized-throttling experiment (Figure 8),
* :mod:`repro.topogen.datacenter` — fat-tree and jellyfish fabrics for the
  §7 data-center / time-dilation studies.
"""

from repro.topogen.simple import (
    dumbbell_topology,
    point_to_point_topology,
    star_topology,
    tree_topology,
)
from repro.topogen.scale_free import scale_free_topology
from repro.topogen.aws import (
    AWS_REGION_LATENCY_FROM_US_EAST_1,
    INTER_REGION_RTT_MS,
    aws_mesh_topology,
    aws_star_topology,
)
from repro.topogen.section54 import throttling_topology
from repro.topogen.datacenter import fat_tree_topology, jellyfish_topology

__all__ = [
    "fat_tree_topology",
    "jellyfish_topology",
    "point_to_point_topology",
    "dumbbell_topology",
    "star_topology",
    "tree_topology",
    "scale_free_topology",
    "aws_star_topology",
    "aws_mesh_topology",
    "AWS_REGION_LATENCY_FROM_US_EAST_1",
    "INTER_REGION_RTT_MS",
    "throttling_topology",
]
