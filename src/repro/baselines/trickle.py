"""A Trickle-like userspace bandwidth shaper.

Trickle interposes on the sockets API via dynamic linking and meters
``send()`` calls in userspace (§2).  Because it only observes whole socket
writes, the unit it can delay is one application send-buffer: while TCP
keeps the buffer full, every blocking interval lets one extra buffer slip
through un-metered.  With iPerf3's default 128 KB buffer the achieved rate
roughly *doubles* (Table 2: +104 %, +184 %, +95 %, +85 %, +67 % across
rows, erratically, as the buffer/quantum phase alignment varies); after
tuning iPerf3 to small buffers the paper measured ≈ +2 % across the board.

Model: one un-metered buffer escapes per buffer-drain interval, so the
overshoot equals the target rate itself, modulated by a deterministic
phase factor in [0.4, 1.0] (hash of the target rate — reproducing the
erratic-but-repeatable row-to-row variation); small buffers shrink the
escape to a residual ~+2 %.  The physical link clamps everything.
"""

from __future__ import annotations

import hashlib

__all__ = ["TrickleShaper", "TRICKLE_DEFAULT_BUFFER_BYTES",
           "TRICKLE_TUNED_BUFFER_BYTES"]

TRICKLE_DEFAULT_BUFFER_BYTES = 128 * 1024  # iPerf3 default socket buffer
TRICKLE_TUNED_BUFFER_BYTES = 8 * 1024      # after the paper's tuning

# Userspace metering cannot see writes smaller than this fraction of its
# scheduling quantum; buffers below the threshold are metered accurately.
_ACCURATE_BUFFER_BITS = 16 * 1024 * 8


def _phase_factor(rate: float) -> float:
    """Deterministic pseudo-phase in [0.4, 1.0] for a given target rate.

    The real system's overshoot depends on how the buffer-drain period
    happens to align with trickle's scheduler tick — effectively arbitrary
    per rate but stable across runs, which a seeded hash reproduces.
    """
    digest = hashlib.sha256(f"trickle:{rate:.0f}".encode()).digest()
    unit = digest[0] / 255.0
    return 0.4 + 0.6 * unit


class TrickleShaper:
    """Userspace rate limiting with send-buffer-granularity error."""

    def __init__(self, target_rate: float, *,
                 send_buffer_bytes: int = TRICKLE_DEFAULT_BUFFER_BYTES,
                 link_rate: float = float("inf")) -> None:
        if target_rate <= 0:
            raise ValueError("target rate must be positive")
        self.target_rate = target_rate
        self.send_buffer_bits = send_buffer_bytes * 8.0
        self.link_rate = link_rate

    def achieved_rate(self) -> float:
        """Long-run average rate a saturating sender obtains."""
        if self.send_buffer_bits <= _ACCURATE_BUFFER_BITS:
            # Small writes are individually meterable: residual ~+2 % from
            # the final un-throttled write of each quantum.
            achieved = self.target_rate * 1.02
        else:
            # One full buffer escapes per drain interval: overshoot of the
            # order of the target itself, phase-modulated.
            achieved = self.target_rate * (1.0 + _phase_factor(self.target_rate))
        return min(achieved, self.link_rate)

    def relative_error(self) -> float:
        """(achieved - target) / target."""
        return self.achieved_rate() / self.target_rate - 1.0
