"""A Maxinet-like distributed full-state emulator with external controller.

Maxinet spreads Mininet workers across machines, tunnelling inter-worker
links, and its emulated switches consult an external OpenFlow controller
(POX in the paper's best configuration).  The error signature Table 4
measures comes from:

* **controller round trips** — a switch seeing a flow it has no rule for
  punts the packet to the controller (tens of milliseconds with POX) before
  forwarding; rules age out, so long experiments keep paying this price,
* **tunnelling overhead** — packets crossing workers pay an encapsulation
  and physical-hop cost on every traversal,
* **controller load** — one controller serves many switches; its service
  queue adds latency that grows with topology size.

The paper reports RTT deviations of up to 11 ms (1000 elements) and 40 ms
(2000) against theoretical values — an order above Kollaps — and gives up
at 4000.  The defaults below are calibrated to that regime via the causes
above (rule timeout, POX service time), not fitted per-experiment.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Optional, Tuple

from repro.netstack.fluid import FluidEngine, FluidFlow, GroundTruthConstraints
from repro.netstack.fullnet import FullStateNetwork, SwitchModel
from repro.netstack.packet import Packet
from repro.sim import RngRegistry, Simulator
from repro.topology.model import Topology

__all__ = ["MaxinetEmulator", "ControllerModel"]


class ControllerModel:
    """The external OpenFlow controller: a shared single server."""

    def __init__(self, sim: Simulator, *, service_time: float = 1.2e-3,
                 base_rtt: float = 4e-3, rule_timeout: float = 0.04) -> None:
        """``rule_timeout`` is the flow-rule lifetime.  POX installs rules
        with a 10 s idle timeout; experiment time here is compressed about
        two orders of magnitude against the paper's 10-minute runs, so the
        default scales the timeout accordingly — each probe keeps paying
        controller round trips at steady state, which is the deviation
        signature Table 4 measures."""
        self.sim = sim
        self.service_time = service_time
        self.base_rtt = base_rtt
        self.rule_timeout = rule_timeout
        self._horizon = 0.0
        self._rules: Dict[Tuple[str, Hashable], float] = {}
        self.packet_ins = 0

    def consult(self, switch: str, flow_key: Hashable) -> float:
        """Delay added to a packet at ``switch`` for ``flow_key``.

        Zero when a fresh rule exists; otherwise a controller round trip
        (queueing at the shared controller included) installs one.
        """
        now = self.sim.now
        expiry = self._rules.get((switch, flow_key))
        if expiry is not None and expiry > now:
            return 0.0
        self.packet_ins += 1
        start = max(now, self._horizon)
        self._horizon = start + self.service_time
        delay = (start - now) + self.service_time + self.base_rtt
        self._rules[(switch, flow_key)] = now + delay + self.rule_timeout
        return delay


class MaxinetEmulator:
    """Distributed full-state emulation across ``workers`` machines."""

    def __init__(self, topology: Topology, *, workers: int = 4, seed: int = 0,
                 fluid_dt: float = 0.010,
                 tunnel_delay: float = 120e-6,
                 controller: Optional[ControllerModel] = None) -> None:
        self.sim = Simulator()
        self.rng = RngRegistry(seed)
        self.topology = topology
        self.workers = workers
        self.tunnel_delay = tunnel_delay
        self.controller = controller or ControllerModel(self.sim)
        # Workers partition the switches; a link whose endpoints live on
        # different workers is tunnelled.  Partitioning is hash-based, as
        # Maxinet's default placement effectively is for generated graphs.
        self._worker_of = {}
        for index, bridge in enumerate(sorted(topology.bridges)):
            self._worker_of[bridge] = index % workers

        emulator = self

        class _MaxinetSwitch(SwitchModel):
            def __init__(self, name: str) -> None:
                super().__init__(forward_delay=30e-6)
                self.name = name

            def processing_delay(self, now: float, connection_key) -> float:
                delay = super().processing_delay(now, connection_key)
                delay += emulator.controller.consult(self.name, connection_key)
                return delay

        self.network = FullStateNetwork(
            self.sim, topology, rng=self.rng,
            switch_model_factory=lambda name: _MaxinetSwitch(name))
        self.constraints = GroundTruthConstraints(
            topology, packet_rate=self.network.packet_rate)
        self.fluid = FluidEngine(self.sim, self.constraints, dt=fluid_dt,
                                 rng=self.rng)
        self.network.set_background_load(self.fluid.link_rate)
        self.network.start_usage_monitor()
        self.dataplane = self

    # --------------------------------------------------------- packet plane
    def reachable(self, source: str, destination: str) -> bool:
        return self.network.reachable(source, destination)

    def send(self, packet: Packet, deliver, *, on_drop=None) -> None:
        """Forward with tunnelling delay added per cross-worker hop."""
        route_nodes = self.network._route_nodes.get(
            (packet.source, packet.destination))
        extra = 0.0
        if route_nodes is not None:
            bridges = [node for node in route_nodes
                       if node in self._worker_of]
            for first, second in zip(bridges, bridges[1:]):
                if self._worker_of[first] != self._worker_of[second]:
                    extra += self.tunnel_delay

        def tunnelled_deliver(delivered_packet: Packet) -> None:
            if extra > 0.0:
                self.sim.after(extra, lambda: deliver(delivered_packet))
            else:
                deliver(delivered_packet)

        self.network.send(packet, tunnelled_deliver, on_drop=on_drop)

    # ------------------------------------------------------------ bulk plane
    def start_flow(self, key: Hashable, source: str, destination: str, *,
                   protocol: str = "tcp", congestion_control: str = "cubic",
                   demand: float = float("inf"),
                   size_bits: Optional[float] = None,
                   start_time: float = 0.0) -> FluidFlow:
        flow = FluidFlow(key, source, destination, protocol=protocol,
                         congestion_control=congestion_control, demand=demand,
                         size_bits=size_bits, start_time=start_time)
        return self.fluid.add_flow(flow)

    def stop_flow(self, key: Hashable) -> None:
        self.fluid.remove_flow(key)

    def run(self, until: float) -> None:
        self.sim.run(until=until)
