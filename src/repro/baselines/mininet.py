"""A Mininet-like centralized full-state emulator.

Mininet runs every emulated host, switch and link on one physical machine,
with veth pairs and per-switch processes (§2).  The consequences the paper
measures, and which this model reproduces from their causes:

* **1 Gb/s cap** — Mininet (htb through its API) refuses link rates above
  1 Gb/s: Table 2's "N/A" rows.  ``LinkUnsupportedError`` is raised.
* **per-switch state** — every switch tracks every connection through it;
  the first packet of each connection misses the flow table and pays a
  setup cost on the switch CPU, which also serves forwarding.  With
  connection-per-request workloads the control path saturates and
  throughput collapses as client count rises (Figure 6), while established
  flows (pings, keep-alive connections) cross in microseconds (Table 4,
  Figure 5).
* **single machine** — everything shares one host's CPU: emulating more
  elements than fit one machine fails (Table 4 "N/A" beyond 1000 elements —
  here a configurable element budget).

For well-behaved long-lived flows Mininet is accurate (same htb mechanism
as Kollaps), which Table 2/Figure 5 show: bulk flows run on the same
ground-truth fluid model, minus a small veth/userspace overhead.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.netstack.fluid import FluidEngine, FluidFlow, GroundTruthConstraints
from repro.netstack.fullnet import FullStateNetwork, SwitchModel
from repro.sim import RngRegistry, Simulator
from repro.topology.model import Topology

__all__ = ["MininetEmulator", "LinkUnsupportedError", "ScaleError"]

_MAX_LINK_RATE = 1e9
_DEFAULT_ELEMENT_BUDGET = 1700  # hosts+switches one machine can emulate


class LinkUnsupportedError(ValueError):
    """Mininet cannot impose bandwidth limits greater than 1 Gb/s."""


class ScaleError(RuntimeError):
    """The single-machine deployment cannot hold this many elements."""


class MininetEmulator:
    """Centralized full-state emulation on a single machine."""

    def __init__(self, topology: Topology, *, seed: int = 0,
                 fluid_dt: float = 0.010,
                 element_budget: int = _DEFAULT_ELEMENT_BUDGET,
                 switch_forward_delay: float = 8e-6,
                 connection_setup_cost: float = 5e-3,
                 switch_capacity_pps: float = 200e3) -> None:
        elements = (len(topology.container_names()) + len(topology.bridges))
        if elements > element_budget:
            raise ScaleError(
                f"Mininet is limited to a single machine: {elements} emulated"
                f" elements exceed its budget of {element_budget}")
        for link in topology.links():
            bandwidth = link.properties.bandwidth
            if bandwidth != float("inf") and bandwidth > _MAX_LINK_RATE:
                raise LinkUnsupportedError(
                    f"link {link.key} requests {bandwidth / 1e9:.2f} Gb/s; "
                    "Mininet cannot shape above 1 Gb/s")
        self.sim = Simulator()
        self.rng = RngRegistry(seed)
        self.topology = topology

        def switch_factory(name: str) -> SwitchModel:
            return SwitchModel(forward_delay=switch_forward_delay,
                               connection_setup_cost=connection_setup_cost,
                               capacity_packets_per_s=switch_capacity_pps)

        self.network = FullStateNetwork(self.sim, topology, rng=self.rng,
                                        switch_model_factory=switch_factory)
        self.constraints = GroundTruthConstraints(
            topology, packet_rate=self.network.packet_rate)
        self.fluid = FluidEngine(self.sim, self.constraints, dt=fluid_dt,
                                 rng=self.rng)
        self.network.set_background_load(self.fluid.link_rate)
        self.network.start_usage_monitor()
        self.dataplane = self.network
        # Userspace/veth overhead on bulk throughput: the small shortfall
        # Mininet shows against bare metal in Table 2 (same order as
        # Kollaps's own shaping shortfall).
        self.bulk_efficiency = 0.998

    def start_flow(self, key: Hashable, source: str, destination: str, *,
                   protocol: str = "tcp", congestion_control: str = "cubic",
                   demand: float = float("inf"),
                   size_bits: Optional[float] = None,
                   start_time: float = 0.0) -> FluidFlow:
        flow = FluidFlow(key, source, destination, protocol=protocol,
                         congestion_control=congestion_control, demand=demand,
                         size_bits=size_bits, start_time=start_time)
        return self.fluid.add_flow(flow)

    def stop_flow(self, key: Hashable) -> None:
        self.fluid.remove_flow(key)

    def run(self, until: float) -> None:
        self.sim.run(until=until)
