"""Comparator systems the paper evaluates Kollaps against (§5).

* :mod:`repro.baselines.baremetal` — the ground truth: the full physical
  topology with zero emulation overhead (the authors' hardware testbed).
* :mod:`repro.baselines.mininet` — a centralized full-state emulator:
  every switch is modelled, everything runs on ONE machine, link rates are
  capped at 1 Gb/s, and per-connection switch state degrades short-flow
  workloads (§5.1 Table 2, §5.3 Figure 6).
* :mod:`repro.baselines.maxinet` — a distributed full-state emulator whose
  switches consult an external OpenFlow controller, inflating first-packet
  and per-hop latency (§5.5 Table 4).
* :mod:`repro.baselines.trickle` — a userspace shaper whose accuracy
  depends on the application's socket buffer size (§5.1 Table 2).

Every baseline exposes the same surface as the Kollaps engine where the
benchmarks need it (bulk flows, packet sends).  Harnesses do not construct
these classes directly any more: each baseline is wrapped by an
:class:`~repro.scenario.backends.ExecutionBackend`, and experiments swap
systems with ``compiled.run(backend="mininet")`` etc. through the backend
registry in :mod:`repro.scenario.backends`.
"""

from repro.baselines.baremetal import BareMetalTestbed
from repro.baselines.mininet import MininetEmulator
from repro.baselines.maxinet import MaxinetEmulator
from repro.baselines.trickle import TrickleShaper

__all__ = ["BareMetalTestbed", "MininetEmulator", "MaxinetEmulator",
           "TrickleShaper"]
