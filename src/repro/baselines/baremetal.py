"""The bare-metal testbed: ground truth for every accuracy comparison.

Runs workloads over the *physical* topology with no emulation layer at all:
packets traverse every link and switch hop-by-hop
(:class:`~repro.netstack.fullnet.FullStateNetwork` with zero switch
overhead), and bulk flows are integrated against the real link capacities
(:class:`~repro.netstack.fluid.GroundTruthConstraints`).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.netstack.fluid import (
    FluidEngine,
    FluidFlow,
    GroundTruthConstraints,
)
from repro.netstack.fullnet import FullStateNetwork
from repro.sim import RngRegistry, Simulator
from repro.topology.model import Topology

__all__ = ["BareMetalTestbed"]


class BareMetalTestbed:
    """A physical deployment of the topology (no emulation)."""

    def __init__(self, topology: Topology, *, seed: int = 0,
                 fluid_dt: float = 0.010) -> None:
        self.sim = Simulator()
        self.rng = RngRegistry(seed)
        self.topology = topology
        self.network = FullStateNetwork(self.sim, topology, rng=self.rng)
        self.constraints = GroundTruthConstraints(
            topology, packet_rate=self.network.packet_rate)
        self.fluid = FluidEngine(self.sim, self.constraints, dt=fluid_dt,
                                 rng=self.rng)
        # Both planes ride the same physical wires: packets see capacity
        # occupied by bulk flows and vice versa.
        self.network.set_background_load(self.fluid.link_rate)
        self.network.start_usage_monitor()
        self.dataplane = self.network

    def start_flow(self, key: Hashable, source: str, destination: str, *,
                   protocol: str = "tcp", congestion_control: str = "cubic",
                   demand: float = float("inf"),
                   size_bits: Optional[float] = None,
                   start_time: float = 0.0) -> FluidFlow:
        flow = FluidFlow(key, source, destination, protocol=protocol,
                         congestion_control=congestion_control, demand=demand,
                         size_bits=size_bits, start_time=start_time)
        return self.fluid.add_flow(flow)

    def stop_flow(self, key: Hashable) -> None:
        self.fluid.remove_flow(key)

    def run(self, until: float) -> None:
        self.sim.run(until=until)
