from setuptools import find_packages, setup

setup(
    name="kollaps-repro",
    version="0.5.0",
    description=("Reproduction of Kollaps: decentralized, scalable network "
                 "emulation (EuroSys '20)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    # The core is dependency-free on purpose: every subsystem runs on the
    # standard library alone.  numpy only accelerates the fair-share
    # solver (REPRO_ENGINE selects the backend; see docs/performance.md).
    install_requires=[],
    extras_require={
        "fast": ["numpy>=1.22"],
        "dev": ["pytest", "pytest-benchmark", "hypothesis", "numpy>=1.22"],
    },
)
