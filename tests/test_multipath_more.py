"""Property tests for the multipath extension on random topologies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.collapse import collapse
from repro.core.multipath import k_shortest_paths, multipath_collapse
from repro.topogen import scale_free_topology


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50),
       k=st.integers(min_value=1, max_value=4))
def test_paths_sorted_by_latency(seed, k):
    topology = scale_free_topology(40, seed=seed)
    containers = topology.container_names()
    source, destination = containers[0], containers[-1]
    paths = k_shortest_paths(topology, source, destination, k)
    latencies = [sum(link.properties.latency for link in path)
                 for path in paths]
    assert latencies == sorted(latencies)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50))
def test_first_path_matches_plain_collapse(seed):
    topology = scale_free_topology(40, seed=seed)
    containers = topology.container_names()
    source, destination = containers[0], containers[-1]
    paths = k_shortest_paths(topology, source, destination, 1)
    collapsed = collapse(topology)
    single = collapsed.require_path(source, destination)
    assert tuple(link.link_id for link in paths[0]) == single.link_ids


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50),
       k=st.integers(min_value=2, max_value=4))
def test_multipath_bandwidth_at_least_single_path(seed, k):
    topology = scale_free_topology(40, seed=seed)
    containers = topology.container_names()
    source, destination = containers[0], containers[-1]
    single = multipath_collapse(topology, source, destination, k=1)
    multi = multipath_collapse(topology, source, destination, k=k)
    assert multi.bandwidth >= single.bandwidth - 1e-9


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50))
def test_paths_distinct(seed):
    topology = scale_free_topology(40, seed=seed)
    containers = topology.container_names()
    source, destination = containers[0], containers[-1]
    paths = k_shortest_paths(topology, source, destination, 4)
    signatures = [tuple(link.link_id for link in path) for path in paths]
    assert len(signatures) == len(set(signatures))
