"""Tests for distributed campaign execution: leases, shards, fleet, GC.

The acceptance contract: a fleet run (coordinator + N workers over the
shared-file control plane) produces the byte-identical aggregate of a
serial ``Campaign.run(jobs=1)``; a worker that dies mid-lease has its
unfinished points reassigned and the sweep still completes; and
``ResultStore.compact()`` reclaims superseded records and merged shards
without changing the aggregate.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.campaign import Campaign, ResultStore, run_fleet
from repro.campaign.distributed import (
    Coordinator,
    FleetEvent,
    FleetPaths,
    LeaseTable,
    ShardReader,
    ShardStore,
    Worker,
    default_worker_id,
    ensure_quiescent,
    shard_path,
)
from repro.campaign.distributed.protocol import read_json, write_json
from repro.campaign.grid import CampaignError
from repro.cluster import Cluster
from repro.dashboard import FleetMonitor
from repro.scenario import Scenario, flow

RATES = [1e6, 2e6]


# --------------------------------------------------------------------------
# Factories (module-level: fleet CLI subprocesses resolve them by module).
# --------------------------------------------------------------------------
def pair(*, rate, seed=0):
    return (Scenario.build("pair")
            .service("a").service("b")
            .link("a", "b", latency="1ms", up=rate)
            .workload(flow("a", "b", key="bulk"))
            .deploy(seed=seed, duration=2.0))


def sweep(name="dist-sweep") -> Campaign:
    """2 rates x 2 seeds x 2 backends = 8 points."""
    return (Campaign(name)
            .scenario(pair)
            .grid(rate=RATES)
            .seeds(2)
            .backends("kollaps", "baremetal"))


def slow_pair(*, rate, seed=0):
    """A point whose execution outlasts a sub-second lease timeout."""
    time.sleep(0.5)
    return pair(rate=rate, seed=seed)


def slow_sweep() -> Campaign:
    """2 points, each taking >= 0.5s wall time."""
    return (Campaign("slow-sweep")
            .scenario(slow_pair)
            .grid(rate=RATES)
            .seeds(1)
            .backends("kollaps"))


@pytest.fixture(scope="module")
def serial_markdown():
    """The reference aggregate every distributed run must reproduce."""
    return sweep().run(jobs=1).aggregate().to_markdown()


# --------------------------------------------------------------------------
# Lease bookkeeping (fake clock, no I/O).
# --------------------------------------------------------------------------
class TestLeaseTable:
    def table(self, timeout=10.0, completed=()):
        return LeaseTable(sweep().points(), timeout=timeout,
                          completed=completed)

    def test_pending_follows_shard_order(self):
        points = sweep().points()
        table = self.table()
        assert table.pending == [point.digest() for point in points]

    def test_grant_batches_in_order_one_lease_per_worker(self):
        table = self.table()
        first = table.grant("w1", now=0.0, size=3)
        assert [*first.digests] == [p.digest() for p in sweep().points()[:3]]
        assert table.grant("w1", now=0.0, size=3) is None  # already holds one
        second = table.grant("w2", now=0.0, size=3)
        assert set(first.digests).isdisjoint(second.digests)
        assert len(table.pending) == 8 - 6

    def test_heartbeat_extends_deadline(self):
        table = self.table(timeout=10.0)
        lease = table.grant("w1", now=0.0, size=2)
        assert lease.deadline == 10.0
        assert table.heartbeat("w1", now=8.0)
        assert not table.expire(now=15.0)          # renewed to 18.0
        assert table.expire(now=18.5)

    def test_expiry_requeues_unfinished_in_shard_order(self):
        table = self.table(timeout=5.0)
        lease = table.grant("w1", now=0.0, size=4)
        table.complete(lease.digests[1])
        expired = table.expire(now=6.0)
        assert [l.worker for l in expired] == ["w1"]
        # The completed digest must not be requeued; order is shard order.
        expected = [d for d in (p.digest() for p in sweep().points())
                    if d != lease.digests[1]]
        assert table.pending == expected
        # Reassignment: the next grant hands the orphaned work out again.
        lease2 = table.grant("w2", now=6.0, size=8)
        assert lease.digests[0] in lease2.digests

    def test_heartbeat_without_lease_reports_loss(self):
        table = self.table(timeout=1.0)
        table.grant("w1", now=0.0, size=2)
        table.expire(now=5.0)
        assert table.heartbeat("w1", now=5.1) is False

    def test_completion_closes_drained_lease_and_done(self):
        table = self.table()
        lease = table.grant("w1", now=0.0, size=8)
        for digest in lease.digests:
            assert table.complete(digest)
        assert table.lease_of("w1") is None
        assert table.done()
        assert not table.complete(lease.digests[0])    # duplicate merge

    def test_resume_skips_completed(self):
        done = [p.digest() for p in sweep().points()[:5]]
        table = self.table(completed=done)
        assert table.remaining() == 3
        lease = table.grant("w1", now=0.0, size=10)
        assert len(lease.digests) == 3

    def test_release_requeues(self):
        table = self.table()
        lease = table.grant("w1", now=0.0, size=3)
        table.release("w1")
        assert table.pending[0] == lease.digests[0]
        assert table.lease_of("w1") is None


# --------------------------------------------------------------------------
# Shard stores and incremental tailing.
# --------------------------------------------------------------------------
class TestShards:
    def test_worker_id_validated(self, tmp_path):
        with pytest.raises(ValueError, match="worker id"):
            shard_path(str(tmp_path), "../evil")

    def test_append_load_roundtrip(self, tmp_path):
        shard = ShardStore(str(tmp_path), "w1")
        shard.append({"hash": "abc", "status": "ok"})
        shard.append({"hash": "abc", "status": "error"})
        shard.append({"hash": "def", "status": "ok"})
        records = shard.load()
        assert records["abc"]["status"] == "error"      # last wins
        assert set(records) == {"abc", "def"}

    def test_corrupt_tail_tolerated(self, tmp_path):
        shard = ShardStore(str(tmp_path), "w1")
        shard.append({"hash": "abc", "status": "ok"})
        with open(shard.path, "a", encoding="utf-8") as handle:
            handle.write('{"hash": "torn", "stat')       # killed mid-write
        assert set(shard.load()) == {"abc"}

    def test_rejoining_worker_repairs_torn_tail(self, tmp_path):
        """A worker killed mid-write leaves an unterminated fragment;
        the same id rejoining must not glue its first record onto it
        (the glued line would parse as neither record, forever)."""
        shard = ShardStore(str(tmp_path), "w1")
        shard.append({"hash": "a", "status": "ok"})
        with open(shard.path, "a", encoding="utf-8") as handle:
            handle.write('{"hash": "b", "stat')        # killed mid-write
        rejoined = ShardStore(str(tmp_path), "w1")     # new process
        rejoined.append({"hash": "c", "status": "ok"})
        assert [d for d, _r in ShardReader(shard.path).poll()] == ["a", "c"]
        assert set(rejoined.load()) == {"a", "c"}

    def test_reader_is_incremental(self, tmp_path):
        shard = ShardStore(str(tmp_path), "w1")
        reader = ShardReader(shard.path)
        assert reader.poll() == []
        shard.append({"hash": "a1", "status": "ok"})
        assert [digest for digest, _r in reader.poll()] == ["a1"]
        assert reader.poll() == []
        shard.append({"hash": "b2", "status": "ok"})
        shard.append({"hash": "c3", "status": "ok"})
        assert [digest for digest, _r in reader.poll()] == ["b2", "c3"]

    def test_reader_waits_for_unterminated_tail(self, tmp_path):
        path = str(tmp_path / "w.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"hash": "a1", "status": "ok"}\n')
            handle.write('{"hash": "b2", "st')            # mid-write
        reader = ShardReader(path)
        assert [digest for digest, _r in reader.poll()] == ["a1"]
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('atus": "ok"}\n')                # write completes
        assert [digest for digest, _r in reader.poll()] == ["b2"]

    def test_reader_skips_garbage_line(self, tmp_path):
        path = str(tmp_path / "w.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json at all\n"
                         '{"hash": "ok1", "status": "ok"}\n')
        assert [digest for digest, _r in ShardReader(path).poll()] == ["ok1"]


# --------------------------------------------------------------------------
# Store bulk writes and compaction.
# --------------------------------------------------------------------------
class TestStoreMaintenance:
    def test_append_many_matches_appends(self, tmp_path):
        one = ResultStore(str(tmp_path / "one"))
        many = ResultStore(str(tmp_path / "many"))
        records = [{"hash": f"h{i}", "status": "ok", "i": i}
                   for i in range(5)]
        for record in records:
            one.append(record)
        assert many.append_many(records) == 5
        with open(one.results_path) as a, open(many.results_path) as b:
            assert a.read() == b.read()

    def test_append_many_empty_is_noop(self, tmp_path):
        store = ResultStore(str(tmp_path / "empty"))
        assert store.append_many([]) == 0
        assert not os.path.exists(store.results_path)

    def test_append_many_requires_hash(self, tmp_path):
        store = ResultStore(str(tmp_path / "bad"))
        with pytest.raises(ValueError, match="hash"):
            store.append_many([{"status": "ok"}])

    def test_compact_drops_superseded_and_reports(self, tmp_path):
        store = ResultStore(str(tmp_path / "c"))
        store.append({"hash": "a", "status": "error", "try": 1})
        store.append({"hash": "a", "status": "ok", "try": 2})
        store.append({"hash": "b", "status": "ok"})
        report = store.compact()
        assert report["records_kept"] == 2
        assert report["records_dropped"] == 1
        assert report["bytes_reclaimed"] > 0
        assert store.load()["a"]["try"] == 2

    def test_compact_salvages_unmerged_shard_records(self, tmp_path):
        store = ResultStore(str(tmp_path / "c"))
        store.append({"hash": "a", "status": "ok", "origin": "canonical"})
        shard = ShardStore(store.directory, "w1")
        shard.append({"hash": "a", "status": "ok", "origin": "shard"})
        shard.append({"hash": "b", "status": "ok", "origin": "shard"})
        report = store.compact()
        records = store.load()
        # Canonical wins for merged hashes; unmerged ones are adopted.
        assert records["a"]["origin"] == "canonical"
        assert records["b"]["origin"] == "shard"
        assert report["records_salvaged"] == 1
        assert report["shards_removed"] == 1
        assert store.shard_paths() == []

    def test_compact_salvage_prefers_shard_retry_over_stale_error(
            self, tmp_path):
        """A retry a crashed coordinator never merged must survive
        compaction — same rule as the fleet's own resume salvage."""
        store = ResultStore(str(tmp_path / "c"))
        store.append({"hash": "a", "status": "error", "origin": "stale"})
        shard = ShardStore(store.directory, "w1")
        shard.append({"hash": "a", "status": "ok", "origin": "retry"})
        report = store.compact()
        assert report["records_salvaged"] == 1
        assert store.load()["a"]["origin"] == "retry"

    def test_compact_is_idempotent_and_preserves_aggregate(self, tmp_path,
                                                           serial_markdown):
        store_root = str(tmp_path)
        campaign = sweep()
        campaign.run(jobs=1, store=store_root)
        campaign.run(jobs=1, store=store_root, resume=False)   # supersede
        store = ResultStore(os.path.join(store_root, campaign.name))
        before = sweep().load(store_root).aggregate().to_markdown()
        report = store.compact()
        assert report["records_dropped"] == 8          # one stale run
        after = sweep().load(store_root).aggregate().to_markdown()
        assert before == after == serial_markdown
        again = store.compact()
        assert again["records_dropped"] == 0
        assert again["bytes_reclaimed"] == 0

    def test_compact_refused_while_fleet_serves(self, tmp_path):
        store = ResultStore(str(tmp_path / "busy"))
        coordinator = Coordinator(sweep(), store, lease_timeout=30.0)
        coordinator.start()
        with pytest.raises(CampaignError, match="serving"):
            ensure_quiescent(store)
        ensure_quiescent(store, force=True)            # operator override


# --------------------------------------------------------------------------
# The fleet itself (coordinator + worker threads over the file protocol).
# --------------------------------------------------------------------------
class TestFleet:
    def test_fleet_matches_serial_aggregate(self, tmp_path, serial_markdown):
        events = []
        result = run_fleet(sweep(), workers=2, store=str(tmp_path),
                           lease_size=2, lease_timeout=30.0, timeout=120.0,
                           progress=events.append)
        assert len(result) == 8 and not result.failed()
        assert result.aggregate().to_markdown() == serial_markdown
        store = ResultStore(os.path.join(str(tmp_path), "dist-sweep"))
        assert len(store.load()) == 8
        assert len(store.shard_paths()) == 2
        # Every merge must carry the headline rows the live-delta pane
        # feeds on: (backend label, workload, value).
        merges = [event for event in events if event.kind == "merge"]
        assert len(merges) == 8
        assert all(event.rows for event in merges)
        backends = {row[0] for event in merges for row in event.rows}
        assert backends == {"kollaps", "baremetal"}
        assert {row[1] for event in merges for row in event.rows} == {"bulk"}

    def test_distributed_parallel_serial_all_byte_identical(
            self, tmp_path, serial_markdown):
        """The acceptance criterion, all three execution modes at once."""
        parallel = sweep().run(jobs=2, store=str(tmp_path / "pool"))
        assert parallel.aggregate().to_markdown() == serial_markdown
        fleet = run_fleet(sweep(), workers=2, store=str(tmp_path / "fleet"),
                          lease_size=2, timeout=120.0)
        assert fleet.aggregate().to_markdown() == serial_markdown

    def test_dead_worker_lease_reassigned(self, tmp_path, serial_markdown):
        events = []
        result = run_fleet(sweep(), workers=2, store=str(tmp_path),
                           lease_size=3, lease_timeout=1.0, timeout=120.0,
                           fail_after={0: 1}, progress=events.append)
        assert not result.failed() and len(result) == 8
        assert result.aggregate().to_markdown() == serial_markdown
        kinds = [event.kind for event in events]
        assert "expire" in kinds                       # the death was seen
        merges = [event.worker for event in events if event.kind == "merge"]
        assert merges.count("local-0") == 1            # died after one point
        assert merges.count("local-1") == 7            # survivor took over

    def test_fleet_resumes_from_store(self, tmp_path):
        run_fleet(sweep(), workers=2, store=str(tmp_path), timeout=120.0)
        events = []
        result = run_fleet(sweep(), workers=2, store=str(tmp_path),
                           timeout=30.0, progress=events.append)
        assert result.skipped == 8
        assert not [event for event in events if event.kind == "merge"]

    def test_fresh_fleet_reexecutes_despite_leftover_shards(self, tmp_path,
                                                           serial_markdown):
        """A --fresh rerun must not let run-1's shard files satisfy it."""
        run_fleet(sweep(), workers=2, store=str(tmp_path), timeout=120.0)
        events = []
        result = run_fleet(sweep(), workers=2, store=str(tmp_path),
                           resume=False, timeout=120.0,
                           progress=events.append)
        merges = [event for event in events if event.kind == "merge"]
        assert len(merges) == 8                # every point ran again
        assert result.skipped == 0
        assert result.aggregate().to_markdown() == serial_markdown

    def test_resume_salvages_unmerged_ok_and_retries_stale_error(
            self, tmp_path, serial_markdown):
        """Shard records a dead coordinator never merged: ok records are
        adopted without re-execution, error records are retried."""
        campaign = sweep()
        store = campaign._store(str(tmp_path))
        points = campaign.points()
        # Simulate a crashed fleet: results only in a worker's shard.
        shard = ShardStore(store.directory, "ghost")
        ok_point = points[0]
        shard.append(campaign.run_point(ok_point).to_record())
        error_point = points[1]
        error_record = campaign.run_point(error_point).to_record()
        error_record["status"] = "error"
        error_record["error"] = "host lost power"
        shard.append(error_record)

        events = []
        result = run_fleet(campaign, workers=2, store=str(tmp_path),
                           timeout=120.0, progress=events.append)
        assert result.aggregate().to_markdown() == serial_markdown
        merged = [event.point.digest() for event in events
                  if event.kind == "merge"]
        assert ok_point.digest() not in merged      # salvaged, not re-run
        assert error_point.digest() in merged       # retried
        assert len(merged) == 7
        assert store.load()[error_point.digest()]["status"] == "ok"

    def test_idle_steps_do_not_rewrite_state(self, tmp_path):
        from repro.campaign.distributed.protocol import read_json
        store = ResultStore(str(tmp_path / "idle"))
        coordinator = Coordinator(sweep(), store)
        coordinator.start()
        coordinator.step(now=0.0)
        seq = read_json(coordinator.paths.state)["seq"]
        for tick in range(5):
            coordinator.step(now=float(tick + 1))
        assert read_json(coordinator.paths.state)["seq"] == seq

    def test_cluster_bounds_working_workers(self, tmp_path, serial_markdown):
        events = []
        result = run_fleet(sweep(), workers=2, store=str(tmp_path),
                           cluster=Cluster(1), lease_size=2,
                           lease_timeout=30.0, timeout=120.0,
                           progress=events.append)
        assert not result.failed()
        assert result.aggregate().to_markdown() == serial_markdown
        assert any(event.kind == "wait" for event in events)
        workers = {event.worker for event in events
                   if event.kind == "lease"}
        assert len(workers) == 1                       # one machine, one slot

    def test_coordinator_timeout_without_workers(self, tmp_path):
        store = ResultStore(str(tmp_path / "lonely"))
        coordinator = Coordinator(sweep(), store)
        with pytest.raises(TimeoutError, match="outstanding"):
            coordinator.serve(poll=0.01, timeout=0.1)

    def test_worker_timeout_without_coordinator(self, tmp_path):
        worker = Worker(sweep(), str(tmp_path), "w1")
        with pytest.raises(TimeoutError, match="coordinator"):
            worker.run(poll=0.01, timeout=0.1)

    def test_fleet_needs_a_worker(self, tmp_path):
        with pytest.raises(ValueError, match="at least one worker"):
            run_fleet(sweep(), workers=0, store=str(tmp_path))


# --------------------------------------------------------------------------
# Fleet hardening: stale control plane, ghosts, long points, timeouts.
# --------------------------------------------------------------------------
class TestFleetHardening:
    def test_start_clears_stale_leases_and_heartbeats(self, tmp_path):
        """A new coordinator must not inherit the previous run's lease
        seqs or heartbeat seqs (worker ids recur across runs)."""
        store = ResultStore(str(tmp_path / "stale"))
        paths = FleetPaths(store.directory)
        write_json(paths.lease("local-0"), {"status": "granted", "seq": 999})
        write_json(paths.heartbeat("local-0"),
                   {"worker": "local-0", "seq": 4242})
        write_json(paths.worker("local-0"), {"worker": "local-0"})
        write_json(paths.state, {"status": "done", "run": "previous",
                                 "seq": 9})
        coordinator = Coordinator(sweep(), store)
        coordinator.start()
        assert read_json(paths.lease("local-0")) is None
        assert read_json(paths.heartbeat("local-0")) is None
        state = read_json(paths.state)
        assert state["status"] == "serving"
        assert state["run"] == coordinator.run_id      # stale done replaced
        # Join docs survive: a live worker that joined before the
        # coordinator started never re-announces itself.
        assert "local-0" in paths.joined_workers()

    def test_ghost_join_doc_gets_no_lease_or_machine(self, tmp_path):
        """A leftover join announcement alone (no heartbeat this run)
        must not earn a machine slot or sit on real points."""
        store = ResultStore(str(tmp_path / "ghost"))
        paths = FleetPaths(store.directory)
        write_json(paths.worker("ghost"), {"worker": "ghost"})
        coordinator = Coordinator(sweep(), store, cluster=Cluster(1))
        coordinator.start()
        coordinator.step(now=0.0)
        assert coordinator.workers["ghost"].status == "joining"
        assert coordinator.workers["ghost"].machine is None
        assert coordinator.table.leases == {}
        # A worker that actually heartbeats takes the one machine the
        # ghost must not be holding, and gets the first lease.
        write_json(paths.worker("w1"), {"worker": "w1"})
        write_json(paths.heartbeat("w1"), {"worker": "w1", "seq": 1})
        coordinator.step(now=1.0)
        assert coordinator.workers["w1"].status == "live"
        assert coordinator.table.lease_of("w1") is not None
        assert coordinator.table.lease_of("ghost") is None

    def test_worker_lease_seq_resets_across_coordinator_runs(self, tmp_path):
        """A fresh coordinator restarts its seq counters; the run id
        change must reset the worker's high-water mark, or every new
        grant would be silently ignored."""
        worker = Worker(sweep(), str(tmp_path), "w1")
        lease_path = worker.paths.lease("w1")
        write_json(lease_path, {"status": "granted", "run": "old",
                                "seq": 57, "points": []})
        assert worker._next_lease("old") is not None
        assert worker._next_lease("old") is None       # already seen
        write_json(lease_path, {"status": "granted", "run": "new",
                                "seq": 1, "points": []})
        assert worker._next_lease("old") is None       # not the serving run
        assert worker._next_lease(None) is None        # nobody serving
        assert worker._next_lease("new") is not None   # run changed: seq 1
        write_json(lease_path, {"status": "revoked", "run": "new",
                                "seq": 2})
        assert worker._next_lease("new") is None       # revocation consumed

    def test_worker_ignores_leftover_lease_of_a_dead_fleet(self, tmp_path):
        """A worker started against a stale directory (old state + old
        lease sharing the previous run id) must not burn time executing
        the dead fleet's last grant: the state is 'done', nobody is
        serving, so no lease may run."""
        worker = Worker(sweep(), str(tmp_path), "w1")
        point = sweep().points()[0]
        write_json(worker.paths.lease("w1"),
                   {"status": "granted", "run": "previous", "seq": 3,
                    "points": [point.to_dict()]})
        write_json(worker.paths.state,
                   {"status": "done", "run": "previous", "seq": 9})
        # The run loop only polls leases while a 'serving' state names
        # the run; a stale 'done' run yields none.
        assert worker._next_lease(None) is None
        assert worker.executed == 0

    def test_fleet_completes_despite_stale_control_plane(self, tmp_path,
                                                         serial_markdown):
        """The review scenario: every recurring worker id poisoned with
        a high-seq leftover lease and heartbeat — the sweep must still
        complete instead of hanging until the timeout."""
        paths = FleetPaths(os.path.join(str(tmp_path), "dist-sweep"))
        for worker in ("local-0", "local-1"):
            write_json(paths.worker(worker), {"worker": worker})
            write_json(paths.lease(worker), {"status": "revoked",
                                             "seq": 999})
            write_json(paths.heartbeat(worker), {"worker": worker,
                                                 "seq": 31337})
        result = run_fleet(sweep(), workers=2, store=str(tmp_path),
                           lease_size=2, timeout=60.0)
        assert not result.failed() and len(result) == 8
        assert result.aggregate().to_markdown() == serial_markdown

    def test_long_point_outlives_short_lease_timeout(self, tmp_path):
        """A single point running past lease_timeout must not get its
        healthy worker declared dead: the background pulse renews the
        lease throughout run_point."""
        events = []
        result = run_fleet(slow_sweep(), workers=1, store=str(tmp_path),
                           lease_size=1, lease_timeout=0.3, timeout=60.0,
                           progress=events.append)
        assert not result.failed() and len(result) == 2
        assert not [event for event in events if event.kind == "expire"]
        merges = [event.worker for event in events if event.kind == "merge"]
        assert merges == ["local-0", "local-0"]

    def test_serve_timeout_is_a_no_progress_deadline(self, tmp_path):
        """A fleet steadily completing points slower than the total
        timeout but faster than the per-point timeout must finish."""
        ticks = {"now": 0.0}
        store = ResultStore(str(tmp_path / "steady"))
        campaign = sweep()
        coordinator = Coordinator(campaign, store,
                                  clock=lambda: ticks["now"])
        digests = [point.digest() for point in campaign.points()]
        real_step = coordinator.step

        def step(now):
            real_step(now)
            ticks["now"] += 0.6        # < timeout per point, > in total
            if digests:
                coordinator.table.complete(digests.pop(0))

        coordinator.step = step
        result = coordinator.serve(poll=0.0, timeout=1.0)
        assert coordinator.done()
        assert result is not None      # finished; no TimeoutError raised

    def test_steady_fleet_outlives_short_total_timeout(self, tmp_path):
        """timeout is a no-progress deadline for workers too: a sweep
        whose wall time exceeds it but that completes a point within
        every window must finish, not die mid-run."""
        result = run_fleet(slow_sweep(), workers=1, store=str(tmp_path),
                           lease_size=1, lease_timeout=30.0, timeout=1.0)
        assert not result.failed() and len(result) == 2

    def test_worker_outwaits_stale_done_state(self, tmp_path):
        """A previous run's 'done' state.json must not make a freshly
        started worker exit before the resuming coordinator appears."""
        directory = os.path.join(str(tmp_path), "dist-sweep")
        write_json(FleetPaths(directory).state,
                   {"status": "done", "campaign": "dist-sweep",
                    "run": "previous", "seq": 7, "total": 8,
                    "completed": 8, "workers": []})
        worker = Worker(sweep(), directory, "w1")
        thread = threading.Thread(target=worker.run,
                                  kwargs={"poll": 0.1, "timeout": 60.0},
                                  daemon=True)
        thread.start()
        time.sleep(0.2)                # well inside the 10*poll grace
        coordinator = Coordinator(sweep(), ResultStore(directory))
        result = coordinator.serve(poll=0.05, timeout=60.0)
        thread.join(timeout=10.0)
        assert not result.failed() and len(result) == 8
        assert worker.executed == 8

    def test_worker_exits_on_undisturbed_stale_done_after_grace(
            self, tmp_path):
        """With no coordinator ever showing up, a pre-existing 'done'
        is eventually believed — the worker exits, not hangs."""
        write_json(FleetPaths(str(tmp_path)).state,
                   {"status": "done", "run": "previous", "seq": 3})
        worker = Worker(sweep(), str(tmp_path), "w1",
                        stale_done_grace=0.2)
        assert worker.run(poll=0.02, timeout=30.0) == 0

    def test_restarted_worker_with_same_id_is_not_muted(self, tmp_path):
        """A worker restarting mid-run restarts its heartbeat seq; the
        boot marker must reset the coordinator's high-water mark, or
        the rejoiner stays suspect forever and the fleet hangs."""
        store = ResultStore(str(tmp_path / "restart"))
        paths = FleetPaths(store.directory)
        coordinator = Coordinator(sweep(), store)
        coordinator.start()
        write_json(paths.worker("w1"), {"worker": "w1"})
        write_json(paths.heartbeat("w1"),
                   {"worker": "w1", "boot": "boot-a", "seq": 500})
        coordinator.step(now=0.0)
        assert coordinator.workers["w1"].status == "live"
        assert coordinator.workers["w1"].heartbeat_seq == 500
        # The process dies and comes back: same id, fresh counters.
        write_json(paths.heartbeat("w1"),
                   {"worker": "w1", "boot": "boot-b", "seq": 1,
                    "executed": 0})
        coordinator.step(now=1.0)
        assert coordinator.workers["w1"].heartbeat_seq == 1
        assert coordinator.workers["w1"].last_seen == 1.0
        # The executed high-water mark resets with the boot too, so the
        # rejoiner's progress signal is not muted either.
        assert coordinator.workers["w1"].executed_seen == 0

    def test_serve_deadline_resets_on_heartbeats_alone(self, tmp_path):
        """One healthy point running longer than the timeout must not
        abort the sweep while its worker provably heartbeats."""
        ticks = {"now": 0.0, "beats": 0}
        store = ResultStore(str(tmp_path / "longpoint"))
        campaign = sweep()
        coordinator = Coordinator(campaign, store,
                                  clock=lambda: ticks["now"])
        paths = FleetPaths(store.directory)
        write_json(paths.worker("w1"), {"worker": "w1"})
        digests = [point.digest() for point in campaign.points()]
        real_step = coordinator.step

        def step(now):
            ticks["beats"] += 1
            write_json(paths.heartbeat("w1"),
                       {"worker": "w1", "boot": "b", "seq": ticks["beats"]})
            real_step(now)
            ticks["now"] += 0.6
            if ticks["beats"] > 5:         # a 3.6s "point" vs timeout 2.0
                for digest in digests:
                    coordinator.table.complete(digest)

        coordinator.step = step
        coordinator.serve(poll=0.0, timeout=2.0)     # no TimeoutError
        assert coordinator.done()

    def test_serve_eventually_times_out_on_wedged_worker(self, tmp_path):
        """Heartbeats alone buy at most LIVENESS_PATIENCE timeouts: a
        wedged worker whose pulse keeps beating cannot hang an
        explicitly time-bounded sweep forever."""
        ticks = {"now": 0.0, "beats": 0}
        store = ResultStore(str(tmp_path / "wedge"))
        coordinator = Coordinator(sweep(), store,
                                  clock=lambda: ticks["now"])
        paths = FleetPaths(store.directory)
        write_json(paths.worker("w1"), {"worker": "w1"})
        real_step = coordinator.step

        def step(now):
            ticks["beats"] += 1
            write_json(paths.heartbeat("w1"),
                       {"worker": "w1", "boot": "b", "seq": ticks["beats"],
                        "executed": 0})    # beating, never progressing
            real_step(now)
            ticks["now"] += 0.5

        coordinator.step = step
        with pytest.raises(TimeoutError, match="execution progress"):
            coordinator.serve(poll=0.0, timeout=1.0)
        assert ticks["now"] <= 5.0         # bounded at ~3x, not forever

    def test_state_beats_even_when_unchanged(self, tmp_path):
        """Workers read any state advance as fleet progress, so an
        otherwise-unchanged state must still beat once per
        min(lease_timeout, 15s) for their no-progress deadlines to
        renew while a peer runs one long point."""
        ticks = {"now": 0.0}
        store = ResultStore(str(tmp_path / "beat"))
        coordinator = Coordinator(sweep(), store, lease_timeout=30.0,
                                  clock=lambda: ticks["now"])
        coordinator.start()
        coordinator.step(now=0.0)
        seq = read_json(coordinator.paths.state)["seq"]
        ticks["now"] = 10.0
        coordinator.step(now=10.0)                   # within the window
        assert read_json(coordinator.paths.state)["seq"] == seq
        ticks["now"] = 16.0
        coordinator.step(now=16.0)     # past the 15s cap: forced beat
        assert read_json(coordinator.paths.state)["seq"] > seq

    def test_explicit_zero_grace_is_honored(self, tmp_path):
        """run_fleet and --grace 0 mean 'trust a pre-existing done
        immediately' — no hidden floor."""
        write_json(FleetPaths(str(tmp_path)).state,
                   {"status": "done", "run": "previous", "seq": 3})
        worker = Worker(sweep(), str(tmp_path), "w1", stale_done_grace=0.0)
        start = time.monotonic()
        assert worker.run(poll=0.2, timeout=30.0) == 0
        assert time.monotonic() - start < 1.0

    def test_default_worker_id_survives_weird_hostnames(self, monkeypatch):
        import socket
        monkeypatch.setattr(socket, "gethostname", lambda: "-9lab.internal")
        worker_id = default_worker_id()
        shard_path("/tmp", worker_id)                  # must validate
        assert worker_id.startswith("9lab-")
        monkeypatch.setattr(socket, "gethostname", lambda: "...")
        worker_id = default_worker_id()
        assert worker_id.startswith("worker-")
        shard_path("/tmp", worker_id)


# --------------------------------------------------------------------------
# The dashboard's fleet pane.
# --------------------------------------------------------------------------
class TestFleetMonitor:
    def feed(self, monitor):
        point = sweep().points()[0]
        monitor(FleetEvent(kind="serve", time=0.0, count=8))
        monitor(FleetEvent(kind="join", time=0.1, worker="w1",
                           detail="host-0"))
        monitor(FleetEvent(kind="lease", time=0.2, worker="w1",
                           lease_id=1, count=4))
        monitor(FleetEvent(kind="merge", time=1.0, worker="w1", point=point,
                           status="ok", count=1,
                           rows=(("kollaps", "bulk", 2.0e6),)))
        monitor(FleetEvent(kind="merge", time=2.0, worker="w1", point=point,
                           status="ok", count=2,
                           rows=(("kollaps", "bulk", 1.0e6),)))

    def test_tracks_workers_and_aggregate_deltas(self):
        monitor = FleetMonitor()
        self.feed(monitor)
        assert monitor.total == 8 and monitor.completed == 2
        count, mean, delta = monitor.aggregates[("kollaps", "bulk")]
        assert (count, mean) == (2, 1.5e6)
        assert delta == pytest.approx(-0.5e6)
        pane = monitor.render()
        assert "w1 on host-0: live, lease #1 2/4" in pane
        assert "bulk@kollaps: mean 1.5e+06 over 2" in pane

    def test_expiry_marks_suspect_until_heartbeat(self):
        monitor = FleetMonitor(total=8)
        self.feed(monitor)
        monitor(FleetEvent(kind="expire", time=3.0, worker="w1", lease_id=1,
                           detail="2 points back in the queue"))
        assert monitor.workers["w1"]["status"] == "suspect"
        monitor(FleetEvent(kind="heartbeat", time=4.0, worker="w1", count=9))
        assert monitor.workers["w1"]["status"] == "live"

    def test_streams_feed_lines(self):
        import io
        stream = io.StringIO()
        monitor = FleetMonitor(stream=stream)
        self.feed(monitor)
        feed = stream.getvalue()
        assert "w1 leased 4 points (lease 1)" in feed
        assert "[2/8] ok" in feed


# --------------------------------------------------------------------------
# CLI verbs.
# --------------------------------------------------------------------------
CAMPAIGN_MODULE = '''
from repro.campaign import Campaign
from repro.scenario import Scenario, flow


def pair(*, rate, seed=0):
    return (Scenario.build("pair")
            .service("a").service("b")
            .link("a", "b", latency="1ms", up=rate)
            .workload(flow("a", "b", key="bulk"))
            .deploy(seed=seed, duration=2.0))


CAMPAIGN = (Campaign("cli-fleet")
            .scenario(pair)
            .grid(rate=[1e6, 2e6])
            .seeds(1)
            .backends("kollaps"))
'''


@pytest.fixture
def campaign_file(tmp_path):
    path = tmp_path / "fleet_campaign.py"
    path.write_text(CAMPAIGN_MODULE)
    return str(path)


class TestFleetCli:
    def test_fleet_runs_locally(self, campaign_file, tmp_path, capsys):
        from repro.cli import main
        store = str(tmp_path / "campaigns")
        assert main(["campaign", "fleet", campaign_file, "--store", store,
                     "--workers", "2", "--poll", "0.02",
                     "--timeout", "120", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "2 points" in out and "2 ok" in out
        assert os.path.exists(os.path.join(store, "cli-fleet",
                                           "results.jsonl"))

    def test_fleet_emits_swarm_plan(self, campaign_file, capsys):
        from repro.cli import main
        assert main(["campaign", "fleet", campaign_file,
                     "--workers", "3", "--plan", "swarm"]) == 0
        out = capsys.readouterr().out
        assert "campaign-coordinator" in out
        assert "replicas: 3" in out
        assert "campaigns:/campaigns" in out

    def test_fleet_emits_kubernetes_plan(self, campaign_file, capsys):
        from repro.cli import main
        assert main(["campaign", "fleet", campaign_file,
                     "--workers", "2", "--plan", "kubernetes"]) == 0
        out = capsys.readouterr().out
        assert "PersistentVolumeClaim" in out
        assert "parallelism: 2" in out

    def test_compact_cli(self, campaign_file, tmp_path, capsys):
        from repro.cli import main
        store = str(tmp_path / "campaigns")
        assert main(["campaign", "run", campaign_file, "--store", store,
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["campaign", "compact", campaign_file,
                     "--store", store]) == 0
        out = capsys.readouterr().out
        assert "kept 2 record(s)" in out
        assert main(["campaign", "report", campaign_file,
                     "--store", store]) == 0   # still readable after GC

    def test_compact_cli_refuses_live_fleet(self, campaign_file, tmp_path,
                                            capsys):
        from repro.cli import main
        from repro.campaign import load_campaign
        store = str(tmp_path / "campaigns")
        campaign = load_campaign(campaign_file)
        coordinator = Coordinator(
            campaign, ResultStore(os.path.join(store, campaign.name)))
        coordinator.start()
        assert main(["campaign", "compact", campaign_file,
                     "--store", store]) == 1
        assert "serving" in capsys.readouterr().err
        assert main(["campaign", "compact", campaign_file,
                     "--store", store, "--force"]) == 0


# --------------------------------------------------------------------------
# Orchestration: the fleet deployment documents.
# --------------------------------------------------------------------------
class TestFleetPlan:
    def test_swarm_plan_shape(self):
        from repro.orchestration import campaign_fleet_plan
        plan = campaign_fleet_plan("table2", 4, orchestrator="swarm")
        services = plan.document["services"]
        assert services["campaign-worker"]["deploy"]["replicas"] == 4
        assert "serve" in services["campaign-coordinator"]["command"]
        assert "work" in services["campaign-worker"]["command"]
        assert not plan.needs_bootstrapper
        assert plan.placement["campaign-coordinator"] == "host-0"

    def test_kubernetes_plan_shape(self):
        from repro.orchestration import campaign_fleet_plan, render_plan
        plan = campaign_fleet_plan("table2", 2, orchestrator="kubernetes")
        kinds = [item["kind"] for item in plan.document["items"]]
        assert kinds == ["PersistentVolumeClaim", "Job", "Job"]
        text = render_plan(plan)
        assert "parallelism: 2" in text

    def test_rejects_bad_shapes(self):
        from repro.orchestration import campaign_fleet_plan
        with pytest.raises(ValueError, match="at least one worker"):
            campaign_fleet_plan("table2", 0)
        with pytest.raises(ValueError, match="unknown orchestrator"):
            campaign_fleet_plan("table2", 1, orchestrator="nomad")


# --------------------------------------------------------------------------
# Control-plane files.
# --------------------------------------------------------------------------
class TestProtocol:
    def test_atomic_write_and_read(self, tmp_path):
        from repro.campaign.distributed.protocol import read_json, write_json
        path = str(tmp_path / "doc.json")
        assert read_json(path) is None
        write_json(path, {"x": 1})
        assert read_json(path) == {"x": 1}
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"torn')
        assert read_json(path) is None                 # unparseable = absent

    def test_fleet_paths_and_join_listing(self, tmp_path):
        from repro.campaign.distributed.protocol import write_json
        paths = FleetPaths(str(tmp_path))
        write_json(paths.worker("w2"), {"worker": "w2"})
        write_json(paths.worker("w1"), {"worker": "w1"})
        assert list(paths.joined_workers()) == ["w1", "w2"]
