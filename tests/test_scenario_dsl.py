"""The declarative scenario DSL: schema, round-trip, fuzz, differential.

The load-bearing property is round-trip byte-identity: compile → dump →
reload → recompile must reproduce ``describe()`` and ``path_table()``
exactly, for every checked-in example and for thousands of fuzzed
scenarios.  Everything else — lint diagnostics, semantic diff, the
differential harness — is tested against that same canonical form.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

import pytest

from repro.scenario import Scenario, custom, flow, ping, set_link
from repro.scenario.backends import BareMetalBackend, register_backend
from repro.scenario.dsl import (Diagnostic, FuzzBudget, ScnError,
                                diff_scenarios, dumps_scn, fuzz_campaign,
                                fuzz_corpus, fuzz_point, generate_scenario,
                                lint_scenario, loads_scn, project_common,
                                run_differential, scenario_from_scn,
                                scn_document, validate_document)

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _simple_builder(name: str = "simple") -> Scenario:
    return (Scenario.build(name)
            .service("a", image="iperf")
            .service("b", image="nginx")
            .bridges("s1")
            .link("a", "s1", latency="5ms", up="10Mbps")
            .link("s1", "b", latency="5ms", up="10Mbps")
            .workload(flow("a", "b", rate="2Mbps", protocol="udp",
                           key="f1"))
            .deploy(machines=1, seed=3, duration=10.0))


def _document(**overrides):
    base = {
        "scn": 1,
        "name": "doc",
        "services": [{"name": "a"}, {"name": "b"}],
        "links": [{"orig": "a", "dest": "b", "latency": "5ms",
                   "up": "10Mbps"}],
    }
    base.update(overrides)
    return base


def _errors(document):
    return [d for d in validate_document(document) if d.severity == "error"]


# --------------------------------------------------------------------------
# Schema rejection: every bad document yields a pointed diagnostic.
# --------------------------------------------------------------------------
class TestSchema:
    def test_clean_document_passes(self):
        assert validate_document(_document()) == []

    def test_unsupported_version(self):
        errors = _errors(_document(scn=99))
        assert any("scn" in error.path for error in errors)

    def test_unknown_top_level_key(self):
        errors = _errors(_document(topologee=[]))
        assert any("topologee" in str(error) for error in errors)

    def test_unknown_service_field(self):
        document = _document()
        document["services"][0]["imaeg"] = "typo"
        errors = _errors(document)
        assert any(error.path == "services[0].imaeg"
                   and "unknown key" in error.message for error in errors)

    def test_link_missing_required_endpoint(self):
        document = _document(links=[{"orig": "a", "up": "1Mbps"}])
        errors = _errors(document)
        assert any("links[0]" in error.path and "dest" in error.message
                   for error in errors)

    def test_link_to_undeclared_node(self):
        document = _document(links=[{"orig": "a", "dest": "ghost",
                                     "up": "1Mbps"}])
        errors = _errors(document)
        assert any("ghost" in error.message for error in errors)

    def test_bad_loss_value(self):
        document = _document(links=[{"orig": "a", "dest": "b",
                                     "up": "1Mbps", "loss": 1.5}])
        errors = _errors(document)
        assert any("loss" in error.path for error in errors)

    def test_unknown_workload_kind(self):
        document = _document(workloads=[{"kind": "torrent", "source": "a",
                                         "destination": "b"}])
        errors = _errors(document)
        assert any("workloads[0]" in error.path for error in errors)

    def test_workload_to_undeclared_container(self):
        document = _document(workloads=[{"kind": "flow", "source": "a",
                                         "destination": "nobody"}])
        errors = _errors(document)
        assert any("nobody" in error.message for error in errors)

    def test_duplicate_workload_keys(self):
        spec = {"kind": "flow", "source": "a", "destination": "b",
                "key": "dup"}
        errors = _errors(_document(workloads=[spec, dict(spec)]))
        assert any("dup" in error.message for error in errors)

    def test_event_on_unknown_link(self):
        document = _document(events=[{"time": 1.0, "action": "set_link",
                                      "orig": "a", "dest": "ghost",
                                      "changes": {"latency": "1ms"}}])
        errors = _errors(document)
        assert any("events[0]" in error.path for error in errors)

    def test_unknown_deploy_tunable(self):
        errors = _errors(_document(deploy={"warp_speed": 9}))
        assert any("warp_speed" in str(error) for error in errors)

    def test_isolated_node_is_a_warning_not_error(self):
        document = _document(services=[{"name": "a"}, {"name": "b"},
                                       {"name": "lonely"}])
        diagnostics = validate_document(document)
        assert not _errors(document)
        assert any(d.severity == "warning" and "lonely" in str(d)
                   for d in diagnostics)

    def test_event_past_duration_warns(self):
        document = _document(
            events=[{"time": 99.0, "action": "set_link", "orig": "a",
                     "dest": "b", "changes": {"latency": "1ms"}}],
            deploy={"duration": 10.0})
        diagnostics = validate_document(document)
        assert not _errors(document)
        assert any(d.severity == "warning" and "99" in str(d)
                   for d in diagnostics)

    def test_loads_scn_aggregates_errors(self):
        document = _document(scn=99)
        document["links"][0]["loss"] = -1
        with pytest.raises(ScnError) as info:
            loads_scn(json.dumps(document))
        assert "scn" in str(info.value)
        assert "loss" in str(info.value)


# --------------------------------------------------------------------------
# The round-trip guarantee.
# --------------------------------------------------------------------------
def _assert_roundtrip(builder):
    compiled = builder.compile()
    text = dumps_scn(compiled)
    reloaded = loads_scn(text, source=compiled.name).compile()
    assert reloaded.describe() == compiled.describe()
    assert reloaded.path_table() == compiled.path_table()
    assert dumps_scn(reloaded) == text


class TestRoundTrip:
    @pytest.mark.parametrize(
        "example", sorted(EXAMPLES_DIR.glob("*.py")),
        ids=lambda path: path.stem)
    def test_every_example_roundtrips_byte_identically(self, example):
        _assert_roundtrip(Scenario.from_file(str(example)))

    def test_unit_strings_load_liberally(self):
        document = _document(links=[{"orig": "a", "dest": "b",
                                     "latency": "10ms", "up": "100Mbps",
                                     "loss": "2%"}])
        compiled = scenario_from_scn(document).compile()
        link = next(iter(compiled.topology.links()))
        assert link.properties.latency == pytest.approx(0.010)
        assert link.properties.bandwidth == pytest.approx(100e6)
        assert link.properties.loss == pytest.approx(0.02)

    def test_unlimited_bandwidth_roundtrips(self):
        builder = (Scenario.build("unshaped")
                   .service("a").service("b")
                   .link("a", "b", latency="1ms"))
        document = scn_document(builder.compile())
        # Unlimited is the default rate, so the canonical dump omits it
        # (and never emits bare IEEE infinities — allow_nan=False).
        assert "up" not in document["links"][0]
        assert "inf" not in dumps_scn(builder.compile())
        _assert_roundtrip(builder)

    def test_scripts_lower_to_events_on_dump(self):
        builder = (_simple_builder("storm")
                   .script("at 2 set link a--s1 latency=50ms"))
        document = scn_document(builder.compile())
        assert "scripts" not in document
        assert any(event["action"] == "set_link"
                   for event in document["events"])
        _assert_roundtrip(builder)

    def test_custom_workload_refuses_to_dump(self):
        builder = (_simple_builder("custom")
                   .workload(custom("c1", install=lambda system: None)))
        with pytest.raises(ScnError) as info:
            dumps_scn(builder.compile())
        assert "serializable" in str(info.value)


# --------------------------------------------------------------------------
# The fuzzer: deterministic, valid, round-trip-clean at volume.
# --------------------------------------------------------------------------
class TestFuzzer:
    def test_same_seed_same_bytes(self):
        first = dumps_scn(generate_scenario(7, 3).compile())
        second = dumps_scn(generate_scenario(7, 3).compile())
        assert first == second

    def test_distinct_indices_differ(self):
        corpus = {dumps_scn(builder.compile())
                  for builder in fuzz_corpus(seed=11, count=10)}
        assert len(corpus) == 10

    def test_thousand_fuzzed_scenarios_roundtrip(self):
        budget = FuzzBudget.scaled("small")
        for index in range(1000):
            builder = generate_scenario(42, index, budget)
            compiled = builder.compile()
            text = dumps_scn(compiled)
            reloaded = loads_scn(text, source=compiled.name).compile()
            assert reloaded.describe() == compiled.describe(), \
                f"round-trip broke at seed=42 index={index}"
            assert reloaded.path_table() == compiled.path_table()

    def test_fuzzed_scenarios_lint_clean(self):
        for builder in fuzz_corpus(seed=5, count=50):
            diagnostics = lint_scenario(builder)
            assert not [d for d in diagnostics if d.severity == "error"], \
                f"{builder}: {[str(d) for d in diagnostics]}"

    def test_fuzz_point_is_picklable_and_seeded(self):
        import pickle
        pickle.dumps(fuzz_point)
        builder = fuzz_point(case=2, fuzz_seed=9, seed=123)
        assert builder._deploy_kwargs["seed"] == 123

    def test_fuzz_campaign_grid_shape(self):
        campaign = fuzz_campaign(count=4, backends=("kollaps", "trickle"))
        assert len(campaign.points()) == 8


# --------------------------------------------------------------------------
# Semantic diff.
# --------------------------------------------------------------------------
class TestDiff:
    def test_identical_builders_diff_empty(self):
        difference = diff_scenarios(_simple_builder().compile(),
                                    _simple_builder().compile())
        assert not difference
        assert "identical" in difference.to_text()

    def test_changed_link_property(self):
        after = (Scenario.build("simple")
                 .service("a", image="iperf")
                 .service("b", image="nginx")
                 .bridges("s1")
                 .link("a", "s1", latency="9ms", up="10Mbps")
                 .link("s1", "b", latency="5ms", up="10Mbps")
                 .workload(flow("a", "b", rate="2Mbps", protocol="udp",
                                key="f1"))
                 .deploy(machines=1, seed=3, duration=10.0))
        entries = list(diff_scenarios(_simple_builder().compile(),
                                      after.compile()))
        assert any(entry.op == "~" and entry.kind == "link"
                   and "a->s1" in entry.subject for entry in entries)

    def test_added_and_removed_entities(self):
        before = _simple_builder().compile()
        after = (_simple_builder()
                 .service("c", image="alpine")
                 .link("c", "s1", latency="1ms", up="1Mbps")
                 .at(3, set_link("a", "s1", latency="2ms"))
                 .compile())
        entries = list(diff_scenarios(before, after))
        assert any(e.op == "+" and e.kind == "service" and e.subject == "c"
                   for e in entries)
        assert any(e.op == "+" and e.kind == "event" for e in entries)

    def test_deploy_change_shows_default(self):
        before = _simple_builder().compile()
        after = _simple_builder().deploy(machines=4).compile()
        entries = list(diff_scenarios(before, after))
        assert any(e.kind == "deploy" and "machines" in e.subject
                   for e in entries)


# --------------------------------------------------------------------------
# The differential harness.
# --------------------------------------------------------------------------
class TestDifferential:
    def test_agreeing_backends_report_ok(self):
        compiled = generate_scenario(1, 0).compile()
        report = run_differential(compiled, ("kollaps", "trickle"))
        assert report.ok, report.summary()
        assert report.compared

    def test_projection_drops_packet_workloads_for_trickle(self):
        builder = _simple_builder("probing")
        builder.workload(ping("a", "b", count=5, key="p1"))
        compiled = builder.compile()
        report = run_differential(compiled, ("kollaps", "trickle"))
        assert "p1" in report.dropped_workloads
        assert "trickle" in report.dropped_workloads["p1"]
        assert "f1" in report.compared

    def test_projection_drops_events_without_dynamic_support(self):
        builder = _simple_builder("dynamic")
        builder.at(3, set_link("a", "s1", latency="9ms"))
        compiled = builder.compile()
        from repro.scenario.backends import resolve_backend
        backends = [resolve_backend("kollaps"), resolve_backend("trickle")]
        projected, events_dropped, _ = project_common(compiled, backends)
        assert events_dropped == 1
        assert len(projected.schedule) == 0

    def test_broken_backend_is_caught(self):
        class BrokenBackend(BareMetalBackend):
            """Deliberately wrong: doubles every reported statistic."""

            name = "broken"

            def collect(self, until):
                results, metrics = super().collect(until)
                metrics = {key: dataclasses.replace(
                    record, summary={name: value * 2 for name, value
                                     in record.summary.items()})
                    for key, record in metrics.items()}
                return results, metrics

        register_backend("broken", BrokenBackend)
        compiled = generate_scenario(2, 0).compile()
        report = run_differential(compiled, ("baremetal", "broken"))
        assert not report.ok
        assert any(finding.kind == "metric" and finding.backend == "broken"
                   for finding in report.findings)
        assert all(finding.deviation > report.tolerance
                   for finding in report.findings
                   if finding.kind == "metric")

    def test_backend_error_becomes_finding(self):
        class ExplodingBackend(BareMetalBackend):
            name = "exploding"

            def prepare(self, compiled):
                raise RuntimeError("boom")

        register_backend("exploding", ExplodingBackend)
        compiled = generate_scenario(3, 0).compile()
        report = run_differential(compiled, ("kollaps", "exploding"))
        assert any(finding.kind == "error" and "boom" in finding.detail
                   for finding in report.findings)

    def test_needs_two_backends(self):
        with pytest.raises(ValueError):
            run_differential(_simple_builder().compile(), ("kollaps",))

    def test_report_to_dict_is_json_clean(self):
        compiled = generate_scenario(4, 0).compile()
        report = run_differential(compiled, ("kollaps", "trickle"))
        encoded = json.loads(json.dumps(report.to_dict()))
        assert encoded["scenario"] == compiled.name
        assert encoded["backends"] == ["kollaps", "trickle"]


# --------------------------------------------------------------------------
# Lint as a library.
# --------------------------------------------------------------------------
class TestLint:
    def test_compile_error_is_diagnostic(self):
        builder = (Scenario.build("broken")
                   .service("a")
                   .link("a", "ghost", latency="1ms", up="1Mbps"))
        diagnostics = lint_scenario(builder)
        assert any(d.severity == "error" and "ghost" in d.message
                   for d in diagnostics)

    def test_diagnostic_renders_with_pointer(self):
        diagnostic = Diagnostic("error", "links[2].up", "bad rate")
        assert str(diagnostic) == "error: links[2].up: bad rate"
