"""The emulation engine end-to-end: enforcement, dynamics, metadata."""

import pytest

from repro.core import EmulationEngine, EngineConfig
from repro.topology import (
    DynamicEvent,
    EventAction,
    EventSchedule,
    LinkProperties,
)
from repro.topogen import (
    dumbbell_topology,
    point_to_point_topology,
    throttling_topology,
)

MBPS = 1e6


class TestBasicEmulation:
    def test_single_flow_reaches_path_bandwidth(self):
        engine = EmulationEngine(point_to_point_topology(50 * MBPS),
                                 config=EngineConfig(machines=1, seed=2))
        engine.start_flow("f", "client", "server")
        engine.run(until=10.0)
        assert engine.fluid.mean_throughput("f", 4.0, 10.0) == \
            pytest.approx(50 * MBPS, rel=0.08)

    def test_two_flows_share_bottleneck(self):
        engine = EmulationEngine(dumbbell_topology(2, shared_bandwidth=50 * MBPS),
                                 config=EngineConfig(machines=2, seed=2))
        engine.start_flow("f0", "client0", "server0")
        engine.start_flow("f1", "client1", "server1")
        engine.run(until=15.0)
        total = (engine.fluid.mean_throughput("f0", 8.0, 15.0) +
                 engine.fluid.mean_throughput("f1", 8.0, 15.0))
        assert total == pytest.approx(50 * MBPS, rel=0.10)

    def test_latency_applied_to_packets(self):
        from repro.netstack.packet import Packet
        engine = EmulationEngine(
            point_to_point_topology(1e9, latency=0.030),
            config=EngineConfig(enforce_bandwidth_sharing=False))
        arrivals = []
        engine.dataplane.send(Packet("client", "server", 800),
                              lambda p: arrivals.append(engine.sim.now))
        engine.run(until=1.0)
        assert arrivals[0] == pytest.approx(0.030, rel=0.01)

    def test_placement_spreads_containers(self):
        engine = EmulationEngine(dumbbell_topology(4),
                                 config=EngineConfig(machines=4))
        machines_used = set(engine.placement.values())
        assert len(machines_used) == 4

    def test_explicit_placement_honoured(self):
        topology = point_to_point_topology(1e6)
        engine = EmulationEngine(
            topology, config=EngineConfig(machines=2),
            placement={"client": "host-0", "server": "host-1"})
        assert engine.placement["client"] == "host-0"
        assert engine.placement["server"] == "host-1"


class TestFigure8OnEngine:
    def test_staggered_shares_track_model(self):
        """First three arrivals of §5.4 on the full decentralized stack."""
        engine = EmulationEngine(throttling_topology(),
                                 config=EngineConfig(machines=2, seed=1))
        engine.start_flow("c1", "c1", "s1", start_time=0.0)
        engine.start_flow("c2", "c2", "s2", start_time=6.0)
        engine.start_flow("c3", "c3", "s3", start_time=12.0)
        engine.run(until=24.0)
        # Solo phase: c1 takes the whole 50 Mb/s bottleneck.
        assert engine.fluid.mean_throughput("c1", 3.0, 5.5) == \
            pytest.approx(50 * MBPS, rel=0.10)
        # Two flows: RTT-proportional 23.08 / 26.92 split.
        assert engine.fluid.mean_throughput("c1", 9.0, 11.5) == \
            pytest.approx(23.08 * MBPS, rel=0.15)
        assert engine.fluid.mean_throughput("c2", 9.0, 11.5) == \
            pytest.approx(26.92 * MBPS, rel=0.15)
        # Three flows: 18.45 / 21.55 / 10 (c3 pinned by its access link).
        assert engine.fluid.mean_throughput("c1", 18.0, 24.0) == \
            pytest.approx(18.45 * MBPS, rel=0.15)
        assert engine.fluid.mean_throughput("c2", 18.0, 24.0) == \
            pytest.approx(21.55 * MBPS, rel=0.15)
        assert engine.fluid.mean_throughput("c3", 18.0, 24.0) == \
            pytest.approx(10 * MBPS, rel=0.15)


class TestDynamicTopology:
    def test_bandwidth_change_takes_effect(self):
        schedule = EventSchedule([DynamicEvent(
            time=10.0, action=EventAction.SET_LINK, origin="client",
            destination="s0", changes={"bandwidth": 5 * MBPS})])
        engine = EmulationEngine(point_to_point_topology(50 * MBPS),
                                 schedule, config=EngineConfig(seed=2))
        engine.start_flow("f", "client", "server")
        engine.run(until=20.0)
        before = engine.fluid.mean_throughput("f", 5.0, 10.0)
        after = engine.fluid.mean_throughput("f", 14.0, 20.0)
        assert before == pytest.approx(50 * MBPS, rel=0.10)
        assert after == pytest.approx(5 * MBPS, rel=0.15)

    def test_latency_change_affects_packets(self):
        from repro.netstack.packet import Packet
        schedule = EventSchedule([DynamicEvent(
            time=5.0, action=EventAction.SET_LINK, origin="client",
            destination="s0", changes={"latency": 0.100})])
        engine = EmulationEngine(
            point_to_point_topology(1e9, latency=0.010), schedule,
            config=EngineConfig(enforce_bandwidth_sharing=False))
        arrivals = []
        engine.sim.at(6.0, lambda: engine.dataplane.send(
            Packet("client", "server", 800),
            lambda p: arrivals.append(engine.sim.now - 6.0)))
        engine.run(until=7.0)
        # New one-way: 100 ms (changed half) + 5 ms (other half).
        assert arrivals[0] == pytest.approx(0.105, rel=0.01)

    def test_link_removal_partitions(self):
        from repro.netstack.packet import Packet
        schedule = EventSchedule([DynamicEvent(
            time=5.0, action=EventAction.LEAVE_LINK, origin="client",
            destination="s0")])
        engine = EmulationEngine(
            point_to_point_topology(1e9), schedule,
            config=EngineConfig(enforce_bandwidth_sharing=False))
        drops = []
        engine.sim.at(6.0, lambda: engine.dataplane.send(
            Packet("client", "server", 800), lambda p: None,
            on_drop=lambda p: drops.append(p)))
        engine.run(until=7.0)
        assert len(drops) == 1

    def test_flapping_link_restores_connectivity(self):
        from repro.netstack.packet import Packet
        base = point_to_point_topology(1e9, latency=0.010)
        properties = base.get_link("client", "s0").properties
        schedule = EventSchedule([
            DynamicEvent(time=5.0, action=EventAction.LEAVE_LINK,
                         origin="client", destination="s0"),
            DynamicEvent(time=5.5, action=EventAction.JOIN_LINK,
                         origin="client", destination="s0",
                         properties=properties),
        ])
        engine = EmulationEngine(
            base, schedule, config=EngineConfig(enforce_bandwidth_sharing=False))
        arrivals = []
        engine.sim.at(6.0, lambda: engine.dataplane.send(
            Packet("client", "server", 800),
            lambda p: arrivals.append(engine.sim.now)))
        engine.run(until=7.0)
        assert len(arrivals) == 1


class TestMetadataBehaviour:
    def test_single_machine_no_network_metadata(self):
        engine = EmulationEngine(dumbbell_topology(2),
                                 config=EngineConfig(machines=1, seed=2))
        engine.start_flow("f0", "client0", "server0")
        engine.run(until=5.0)
        assert engine.total_metadata_wire_bytes() == 0

    def test_metadata_grows_with_machines(self):
        def run(machines):
            engine = EmulationEngine(
                dumbbell_topology(4, shared_bandwidth=50 * MBPS),
                config=EngineConfig(machines=machines, seed=2))
            for index in range(4):
                engine.start_flow(f"f{index}", f"client{index}",
                                  f"server{index}")
            engine.run(until=5.0)
            return engine.total_metadata_wire_bytes()

        two = run(2)
        four = run(4)
        assert two > 0
        assert four > two

    def test_loop_disabled_means_no_loops(self):
        engine = EmulationEngine(
            point_to_point_topology(1e6),
            config=EngineConfig(enforce_bandwidth_sharing=False))
        engine.run(until=2.0)
        assert all(manager.loops == 0
                   for manager in engine.managers.values())

    def test_managers_converge_to_same_allocation(self):
        """Decentralization: all managers enforce consistent shares."""
        engine = EmulationEngine(dumbbell_topology(2, shared_bandwidth=50 * MBPS),
                                 config=EngineConfig(machines=2, seed=2))
        engine.start_flow("f0", "client0", "server0")
        engine.start_flow("f1", "client1", "server1")
        engine.run(until=10.0)
        rates = []
        for source, destination in (("client0", "server0"),
                                    ("client1", "server1")):
            tcal = engine.tcals[source]
            rates.append(tcal.shaping_for(destination).htb.rate)
        assert sum(rates) == pytest.approx(50 * MBPS, rel=0.15)
        assert rates[0] == pytest.approx(rates[1], rel=0.15)
