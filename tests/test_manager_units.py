"""Unit-level tests of the Emulation Manager and Core internals."""

import pytest

from repro.core.collapse import collapse
from repro.core.emucore import EmulationCore, UsageSample
from repro.core.manager import EmulationManager
from repro.metadata.channels import MediaDriver
from repro.metadata.encoding import FlowRecord, MetadataMessage
from repro.sim import Simulator
from repro.tc.ip import IpAllocator
from repro.tc.tcal import Tcal
from repro.topogen import dumbbell_topology

MBPS = 1e6


def build_manager(sim=None, *, machine="m0", index=0, period=0.05,
                  containers=("client0", "server0", "client1", "server1"),
                  **kwargs):
    sim = sim or Simulator()
    driver = MediaDriver(sim, machine)
    indices = {name: i for i, name in enumerate(containers)}
    manager = EmulationManager(sim, machine, driver, index, indices,
                               period=period, **kwargs)
    topology = dumbbell_topology(2, shared_bandwidth=50 * MBPS)
    manager.install_state(collapse(topology),
                          {link.link_id: link.properties.bandwidth
                           for link in topology.links()})
    return sim, manager, topology


def attach_core(sim, manager, container, destination, *, bandwidth=50 * MBPS):
    allocator = IpAllocator()
    for name in (container, destination):
        allocator.assign(name)
    tcal = Tcal(container, allocator)
    tcal.install_destination(destination, latency=0.01, jitter=0.0,
                             loss=0.0, bandwidth=bandwidth)
    core = EmulationCore(container, tcal)
    manager.add_core(core)
    return core


class TestUsageSampling:
    def test_idle_destination_not_reported(self):
        sim, manager, _ = build_manager()
        core = attach_core(sim, manager, "client0", "server0")
        assert core.sample_usage(0.05, now=0.05) == {}

    def test_rate_computed_from_elapsed_time(self):
        sim, manager, _ = build_manager()
        core = attach_core(sim, manager, "client0", "server0")
        core.tcal.shaping_for("server0").record(1e6)
        samples = core.sample_usage(0.05, now=0.1)  # first poll: 0.1 s
        assert samples["server0"].rate == pytest.approx(1e7)

    def test_rate_clamped_to_shaper(self):
        """Aliasing above the htb rate must not read as oversubscription."""
        sim, manager, _ = build_manager()
        core = attach_core(sim, manager, "client0", "server0",
                           bandwidth=10 * MBPS)
        core.tcal.shaping_for("server0").record(5e6)  # 100 Mb/s apparent
        samples = core.sample_usage(0.05, now=0.05)
        assert samples["server0"].rate <= 10 * MBPS * 1.05

    def test_saturating_flag(self):
        sample = UsageSample("d", rate=9.5 * MBPS, htb_rate=10 * MBPS)
        assert sample.saturating
        assert not UsageSample("d", rate=5 * MBPS,
                               htb_rate=10 * MBPS).saturating

    def test_enforce_ignores_unknown_destination(self):
        sim, manager, _ = build_manager()
        core = attach_core(sim, manager, "client0", "server0")
        core.enforce("ghost", bandwidth=1e6)  # must not raise


class TestManagerLoop:
    def test_loop_without_state_is_noop(self):
        sim = Simulator()
        driver = MediaDriver(sim, "m0")
        manager = EmulationManager(sim, "m0", driver, 0, {})
        manager.run_loop_iteration()
        assert manager.loops == 0

    def test_local_flow_enforced_to_path_share(self):
        sim, manager, _ = build_manager()
        core = attach_core(sim, manager, "client0", "server0")
        core.tcal.shaping_for("server0").record(50 * MBPS * 0.05)
        manager.run_loop_iteration()
        assert manager.enforcements == 1
        # Lone flow: full bottleneck share.
        assert core.tcal.shaping_for("server0").htb.rate == \
            pytest.approx(50 * MBPS, rel=0.01)

    def test_remote_report_shrinks_local_share(self):
        sim, manager, _ = build_manager()
        core = attach_core(sim, manager, "client0", "server0")
        # A remote manager reports an equal-RTT flow on the shared link.
        shared_links = None
        path = manager.collapsed.path("client1", "server1")
        remote = MetadataMessage(sender=1, flows=(FlowRecord(
            source_index=manager.container_indices["client1"],
            destination_index=manager.container_indices["server1"],
            used_bandwidth=25 * MBPS, link_ids=path.link_ids),))
        manager._on_message(remote)
        core.tcal.shaping_for("server0").record(50 * MBPS * 0.05)
        sim.at(0.0, manager.run_loop_iteration)
        sim.run()
        rate = core.tcal.shaping_for("server0").htb.rate
        assert rate < 40 * MBPS  # no longer the whole link

    def test_stale_remote_reports_expire(self):
        sim, manager, _ = build_manager()
        core = attach_core(sim, manager, "client0", "server0")
        path = manager.collapsed.path("client1", "server1")
        remote = MetadataMessage(sender=1, flows=(FlowRecord(
            source_index=manager.container_indices["client1"],
            destination_index=manager.container_indices["server1"],
            used_bandwidth=25 * MBPS, link_ids=path.link_ids),))
        manager._on_message(remote)
        # Local traffic keeps flowing; the remote peer goes silent.
        def tick():
            core.tcal.shaping_for("server0").record(
                core.tcal.shaping_for("server0").htb.rate * 0.05)
            manager.run_loop_iteration()
        for step in range(10):
            sim.at(step * 0.05 + 0.01, tick)
        sim.run()
        rate = core.tcal.shaping_for("server0").htb.rate
        assert rate == pytest.approx(50 * MBPS, rel=0.05)

    def test_own_messages_ignored(self):
        sim, manager, _ = build_manager()
        manager._on_message(MetadataMessage(sender=0, flows=()))
        assert manager._remote == {}


class TestChangeOnlyPublication:
    def test_first_report_always_published(self):
        sim, manager, _ = build_manager(update_on_change_only=True)
        flows = (FlowRecord(0, 1, 10 * MBPS, (0,)),)
        assert manager._publication_due(flows)

    def test_unchanged_report_suppressed(self):
        sim, manager, _ = build_manager(update_on_change_only=True)
        flows = (FlowRecord(0, 1, 10 * MBPS, (0,)),)
        manager._last_published = flows
        manager._loops_since_publish = 0
        assert not manager._publication_due(flows)

    def test_rate_change_triggers_publication(self):
        sim, manager, _ = build_manager(update_on_change_only=True)
        manager._last_published = (FlowRecord(0, 1, 10 * MBPS, (0,)),)
        manager._loops_since_publish = 0
        changed = (FlowRecord(0, 1, 20 * MBPS, (0,)),)
        assert manager._publication_due(changed)

    def test_flow_set_change_triggers_publication(self):
        sim, manager, _ = build_manager(update_on_change_only=True)
        manager._last_published = (FlowRecord(0, 1, 10 * MBPS, (0,)),)
        manager._loops_since_publish = 0
        different_flow = (FlowRecord(2, 3, 10 * MBPS, (0,)),)
        assert manager._publication_due(different_flow)

    def test_keepalive_forces_publication(self):
        sim, manager, _ = build_manager(update_on_change_only=True,
                                        keepalive_periods=2)
        flows = (FlowRecord(0, 1, 10 * MBPS, (0,)),)
        manager._last_published = flows
        manager._loops_since_publish = 2
        assert manager._publication_due(flows)
