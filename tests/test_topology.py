"""Topology model, parsers and dynamic event schedules."""

import pytest

from repro.topology import (
    Bridge,
    DynamicEvent,
    EventAction,
    EventSchedule,
    Link,
    LinkProperties,
    Service,
    Topology,
    TopologyError,
    parse_experiment,
    parse_experiment_text,
    parse_modelnet_xml,
)

LISTING_1_AND_2 = """
experiment:
  services:
    name: c1
    image: "iperf"
    name: sv
    image: "nginx"
    replicas: 2
  bridges:
    name: s1
    name: s2
  links:
    orig: c1
    dest: s1
    latency: 10
    up: 10Mbps
    down: 10Mbps
    jitter: 0.25
    orig: s1
    dest: s2
    latency: 20
    up: 100Mbps
    down: 100Mbps
    orig: sv
    dest: s2
    latency: 5
    up: 50Mbps
    down: 50Mbps
dynamic:
  orig: c1
  dest: s1
  jitter: 0.5
  time: 120
  action: leave
  name: s1
  time: 200
  action: join
  orig: c1
  dest: s2
  up: 100Mbps
  down: 100Mbps
  latency: 10
  time: 210
  action: leave
  name: sv
  time: 240
"""


def figure1_description():
    """The dict form of Figure 1's target topology."""
    return {
        "experiment": {
            "services": [
                {"name": "c1", "image": "iperf"},
                {"name": "sv", "image": "nginx", "replicas": 2},
            ],
            "bridges": [{"name": "s1"}, {"name": "s2"}],
            "links": [
                {"orig": "c1", "dest": "s1", "latency": 10,
                 "up": "10Mbps", "down": "10Mbps"},
                {"orig": "s1", "dest": "s2", "latency": 20,
                 "up": "100Mbps", "down": "100Mbps"},
                {"orig": "sv", "dest": "s2", "latency": 5,
                 "up": "50Mbps", "down": "50Mbps"},
            ],
        },
    }


class TestLinkProperties:
    def test_validation_rejects_negative_latency(self):
        with pytest.raises(TopologyError):
            LinkProperties(latency=-1.0)

    def test_validation_rejects_zero_bandwidth(self):
        with pytest.raises(TopologyError):
            LinkProperties(bandwidth=0.0)

    def test_validation_rejects_loss_above_one(self):
        with pytest.raises(TopologyError):
            LinkProperties(loss=1.5)

    def test_validation_rejects_unknown_distribution(self):
        with pytest.raises(TopologyError):
            LinkProperties(jitter_distribution="levy")

    def test_describe_mentions_rate_and_latency(self):
        text = LinkProperties(latency=0.010, bandwidth=10e6).describe()
        assert "10Mbps" in text and "10ms" in text


class TestTopologyModel:
    def test_duplicate_names_rejected(self):
        topology = Topology()
        topology.add_service(Service("a"))
        with pytest.raises(TopologyError):
            topology.add_bridge(Bridge("a"))

    def test_bidirectional_link_creates_two(self):
        topology = Topology()
        topology.add_service(Service("a"))
        topology.add_service(Service("b"))
        created = topology.add_link("a", "b", LinkProperties(bandwidth=1e6))
        assert len(created) == 2
        assert topology.get_link("a", "b").destination == "b"
        assert topology.get_link("b", "a").destination == "a"

    def test_asymmetric_up_down(self):
        topology = Topology()
        topology.add_service(Service("a"))
        topology.add_service(Service("b"))
        topology.add_link("a", "b", LinkProperties(bandwidth=10e6),
                          down_properties=LinkProperties(bandwidth=1e6))
        assert topology.get_link("a", "b").properties.bandwidth == 10e6
        assert topology.get_link("b", "a").properties.bandwidth == 1e6

    def test_link_to_unknown_node_rejected(self):
        topology = Topology()
        topology.add_service(Service("a"))
        with pytest.raises(TopologyError):
            topology.add_link("a", "ghost", LinkProperties())

    def test_self_loop_rejected(self):
        topology = Topology()
        topology.add_service(Service("a"))
        with pytest.raises(TopologyError):
            topology.add_link("a", "a", LinkProperties())

    def test_replicas_expand_to_container_names(self):
        service = Service("sv", replicas=3)
        assert service.container_names() == ["sv.0", "sv.1", "sv.2"]

    def test_single_replica_keeps_bare_name(self):
        assert Service("c1").container_names() == ["c1"]

    def test_remove_bridge_drops_attached_links(self):
        topology = Topology()
        topology.add_service(Service("a"))
        topology.add_bridge(Bridge("s"))
        topology.add_link("a", "s", LinkProperties())
        topology.remove_bridge("s")
        assert topology.link_count() == 0

    def test_update_link_changes_one_field(self):
        topology = Topology()
        topology.add_service(Service("a"))
        topology.add_service(Service("b"))
        topology.add_link("a", "b", LinkProperties(latency=0.01, bandwidth=1e6))
        topology.update_link("a", "b", jitter=0.002)
        properties = topology.get_link("a", "b").properties
        assert properties.jitter == 0.002
        assert properties.latency == 0.01  # untouched

    def test_copy_is_independent(self):
        topology = Topology()
        topology.add_service(Service("a"))
        topology.add_service(Service("b"))
        topology.add_link("a", "b", LinkProperties(bandwidth=1e6))
        clone = topology.copy()
        clone.update_link("a", "b", bandwidth=5e6)
        assert topology.get_link("a", "b").properties.bandwidth == 1e6

    def test_copy_preserves_link_ids(self):
        topology = Topology()
        topology.add_service(Service("a"))
        topology.add_service(Service("b"))
        topology.add_link("a", "b", LinkProperties())
        original_ids = sorted(link.link_id for link in topology.links())
        clone_ids = sorted(link.link_id for link in topology.copy().links())
        assert original_ids == clone_ids

    def test_validate_requires_services(self):
        with pytest.raises(TopologyError):
            Topology().validate()


class TestDictParser:
    def test_parses_figure1(self):
        topology, schedule = parse_experiment(figure1_description())
        assert set(topology.services) == {"c1", "sv"}
        assert set(topology.bridges) == {"s1", "s2"}
        assert topology.link_count() == 6  # three bidirectional
        assert len(schedule) == 0

    def test_latency_parsed_as_milliseconds(self):
        topology, _ = parse_experiment(figure1_description())
        assert topology.get_link("c1", "s1").properties.latency == \
            pytest.approx(0.010)

    def test_bandwidth_parsed(self):
        topology, _ = parse_experiment(figure1_description())
        assert topology.get_link("sv", "s2").properties.bandwidth == 50e6

    def test_containers_expand(self):
        topology, _ = parse_experiment(figure1_description())
        assert sorted(topology.container_names()) == ["c1", "sv.0", "sv.1"]

    def test_missing_name_raises(self):
        with pytest.raises(TopologyError):
            parse_experiment({"experiment": {"services": [{"image": "x"}]}})

    def test_dynamic_events_parsed(self):
        description = figure1_description()
        description["dynamic"] = [
            {"orig": "c1", "dest": "s1", "jitter": 0.5, "time": 120},
            {"action": "leave", "name": "s1", "time": 200},
        ]
        _, schedule = parse_experiment(description)
        assert len(schedule) == 2
        assert schedule.events[0].action is EventAction.SET_LINK
        assert schedule.events[1].action is EventAction.LEAVE_NODE


class TestListingTextParser:
    def test_full_listing_round_trip(self):
        topology, schedule = parse_experiment_text(LISTING_1_AND_2)
        assert set(topology.services) == {"c1", "sv"}
        assert topology.services["sv"].replicas == 2
        assert set(topology.bridges) == {"s1", "s2"}
        assert topology.link_count() == 6
        assert len(schedule) == 4

    def test_dynamic_events_ordered_and_typed(self):
        _, schedule = parse_experiment_text(LISTING_1_AND_2)
        actions = [event.action for event in schedule]
        assert actions == [EventAction.SET_LINK, EventAction.LEAVE_NODE,
                           EventAction.JOIN_LINK, EventAction.LEAVE_NODE]
        times = [event.time for event in schedule]
        assert times == [120.0, 200.0, 210.0, 240.0]

    def test_jitter_change_preserves_other_fields(self):
        _, schedule = parse_experiment_text(LISTING_1_AND_2)
        event = schedule.events[0]
        assert event.changes == {"jitter": pytest.approx(0.0005)}


class TestModelnetXml:
    XML = """
    <topology name="demo">
      <vertices>
        <vertex name="c1" role="virtnode" image="iperf"/>
        <vertex name="sv" role="virtnode" image="nginx" replicas="2"/>
        <vertex name="s1" role="gateway"/>
      </vertices>
      <edges>
        <edge src="c1" dst="s1" latency="10" bw="10Mbps"/>
        <edge src="sv" dst="s1" latency="5" bw="50Mbps"/>
      </edges>
    </topology>
    """

    def test_parses_vertices_and_edges(self):
        topology, schedule = parse_modelnet_xml(self.XML)
        assert set(topology.services) == {"c1", "sv"}
        assert set(topology.bridges) == {"s1"}
        assert topology.link_count() == 4
        assert len(schedule) == 0

    def test_latency_in_milliseconds(self):
        topology, _ = parse_modelnet_xml(self.XML)
        assert topology.get_link("c1", "s1").properties.latency == \
            pytest.approx(0.010)

    def test_malformed_xml_raises(self):
        with pytest.raises(TopologyError):
            parse_modelnet_xml("<topology><unclosed></topology>")


class TestEventSchedule:
    def build_base(self):
        topology = Topology()
        topology.add_service(Service("a"))
        topology.add_service(Service("b"))
        topology.add_bridge(Bridge("s"))
        topology.add_link("a", "s", LinkProperties(latency=0.01, bandwidth=1e6))
        topology.add_link("b", "s", LinkProperties(latency=0.01, bandwidth=1e6))
        return topology

    def test_snapshots_start_with_base(self):
        base = self.build_base()
        schedule = EventSchedule()
        snapshots = schedule.snapshots(base)
        assert len(snapshots) == 1
        assert snapshots[0][0] == 0.0

    def test_snapshot_per_event_time(self):
        base = self.build_base()
        schedule = EventSchedule([
            DynamicEvent(time=10.0, action=EventAction.SET_LINK,
                         origin="a", destination="s",
                         changes={"bandwidth": 2e6}),
            DynamicEvent(time=20.0, action=EventAction.LEAVE_LINK,
                         origin="b", destination="s"),
        ])
        snapshots = schedule.snapshots(base)
        assert [time for time, _ in snapshots] == [0.0, 10.0, 20.0]
        assert snapshots[1][1].get_link("a", "s").properties.bandwidth == 2e6
        assert snapshots[2][1].link_count() == 2  # b<->s removed

    def test_same_time_events_coalesce(self):
        base = self.build_base()
        schedule = EventSchedule([
            DynamicEvent(time=10.0, action=EventAction.SET_LINK,
                         origin="a", destination="s", changes={"latency": 0.02}),
            DynamicEvent(time=10.0, action=EventAction.SET_LINK,
                         origin="b", destination="s", changes={"latency": 0.03}),
        ])
        snapshots = schedule.snapshots(base)
        assert len(snapshots) == 2

    def test_leave_then_join_restores_definition(self):
        base = self.build_base()
        base.services["a"].replicas = 1
        schedule = EventSchedule([
            DynamicEvent(time=5.0, action=EventAction.LEAVE_NODE, name="a"),
            DynamicEvent(time=9.0, action=EventAction.JOIN_NODE, name="a"),
        ])
        snapshots = schedule.snapshots(base)
        assert "a" not in snapshots[1][1].services
        assert "a" in snapshots[2][1].services

    def test_link_flap(self):
        """Rapid leave + join of a link emulates a flapping link (§3)."""
        base = self.build_base()
        properties = base.get_link("a", "s").properties
        schedule = EventSchedule([
            DynamicEvent(time=1.0, action=EventAction.LEAVE_LINK,
                         origin="a", destination="s"),
            DynamicEvent(time=1.2, action=EventAction.JOIN_LINK,
                         origin="a", destination="s", properties=properties),
        ])
        snapshots = schedule.snapshots(base)
        assert snapshots[1][1].link_count() == 2
        assert snapshots[2][1].link_count() == 4

    def test_base_topology_not_mutated(self):
        base = self.build_base()
        schedule = EventSchedule([
            DynamicEvent(time=1.0, action=EventAction.LEAVE_NODE, name="a")])
        schedule.snapshots(base)
        assert "a" in base.services

    def test_events_sorted_by_time(self):
        schedule = EventSchedule([
            DynamicEvent(time=20.0, action=EventAction.LEAVE_NODE, name="x"),
            DynamicEvent(time=10.0, action=EventAction.LEAVE_NODE, name="y"),
        ])
        assert [event.time for event in schedule] == [10.0, 20.0]

    def test_horizon(self):
        schedule = EventSchedule([
            DynamicEvent(time=42.0, action=EventAction.LEAVE_NODE, name="x")])
        assert schedule.horizon() == 42.0
        assert EventSchedule().horizon() == 0.0
