"""Tests for the command-line front end."""

import pytest

from repro.cli import main

DESCRIPTION = """\
experiment:
  services:
    name: c1
    image: "iperf"
    name: sv
    image: "nginx"
  bridges:
    name: s1
    name: s2
  links:
    orig: c1
    dest: s1
    latency: 10
    up: 10Mbps
    down: 10Mbps
    orig: s1
    dest: s2
    latency: 20
    up: 100Mbps
    down: 100Mbps
    orig: s2
    dest: sv
    latency: 5
    up: 50Mbps
    down: 50Mbps
"""

SCENARIO = """\
# slow the backbone mid-run, then restore it
at 2 set link s1--s2 latency=80ms
at 4 set link s1--s2 latency=20ms
"""


@pytest.fixture
def description_file(tmp_path):
    path = tmp_path / "experiment.txt"
    path.write_text(DESCRIPTION)
    return str(path)


@pytest.fixture
def scenario_file(tmp_path):
    path = tmp_path / "scenario.storm"
    path.write_text(SCENARIO)
    return str(path)


class TestValidate:
    def test_prints_collapsed_paths(self, description_file, capsys):
        assert main(["validate", description_file]) == 0
        out = capsys.readouterr().out
        assert "c1 -> sv" in out
        assert "10Mbps" in out      # min bandwidth on the path
        assert "35ms" in out        # 10+20+5 ms end-to-end

    def test_with_scenario(self, description_file, scenario_file, capsys):
        assert main(["validate", description_file,
                     "--scenario", scenario_file]) == 0
        assert "dynamic events: 2" in capsys.readouterr().out

    def test_missing_file_exits_cleanly(self, tmp_path, capsys):
        assert main(["validate", str(tmp_path / "nope.txt")]) == 1
        err = capsys.readouterr().err
        assert "nope.txt" in err
        assert "error" in err

    def test_bad_description_reports_diagnostics(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text(DESCRIPTION.replace("dest: sv", "dest: ghost"))
        assert main(["validate", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "ghost" in err
        assert "error(s)" in err


class TestRun:
    def test_run_with_flow(self, description_file, capsys):
        assert main(["run", description_file, "--duration", "5",
                     "--machines", "2", "--flow", "c1:sv"]) == 0
        out = capsys.readouterr().out
        assert "flow c1->sv:" in out

    def test_run_with_scenario(self, description_file, scenario_file,
                               capsys):
        assert main(["run", description_file, "--duration", "5",
                     "--scenario", scenario_file]) == 0
        capsys.readouterr()

    def test_run_on_baseline_backend_reports_metrics(self, description_file,
                                                     capsys):
        assert main(["run", description_file, "--duration", "5",
                     "--backend", "baremetal", "--flow", "c1:sv"]) == 0
        out = capsys.readouterr().out
        assert "backend: baremetal" in out
        assert "workload c1->sv" in out

    def test_run_incompatible_backend_fails_cleanly(self, tmp_path, capsys):
        # Trickle has no packet plane; the ping workload must surface as
        # one clean message, not a traceback.
        module = tmp_path / "pinger.py"
        module.write_text(
            "from repro.scenario import Scenario, ping\n"
            "SCENARIO = (Scenario.build('demo')\n"
            "            .service('a').service('b')\n"
            "            .link('a', 'b', latency='1ms', up='1Mbps')\n"
            "            .workload(ping('a', 'b', count=5))\n"
            "            .deploy(seed=7, duration=2.0))\n")
        assert main(["run", str(module), "--backend", "trickle"]) == 1
        err = capsys.readouterr().err
        assert "cannot run on the 'trickle' backend" in err
        assert "packet plane" in err

    def test_run_unknown_backend_fails_cleanly(self, description_file,
                                               capsys):
        assert main(["run", description_file, "--duration", "5",
                     "--backend", "ns3"]) == 1
        err = capsys.readouterr().err
        assert "ns3" in err and "kollaps" in err


class TestPlan:
    def test_swarm_plan(self, description_file, capsys):
        assert main(["plan", description_file, "--machines", "2"]) == 0
        out = capsys.readouterr().out
        assert "services:" in out
        assert "kollaps-bootstrapper:" in out
        assert "c1 -> host-0" in out

    def test_kubernetes_plan(self, description_file, capsys):
        assert main(["plan", description_file,
                     "--orchestrator", "kubernetes"]) == 0
        out = capsys.readouterr().out
        assert "kind: DaemonSet" in out
        assert "bootstrapper=no" in out


class TestScenario:
    def test_compiles_and_lists_events(self, description_file,
                                       scenario_file, capsys):
        assert main(["scenario", "script", description_file,
                     scenario_file]) == 0
        out = capsys.readouterr().out
        assert "set_link" in out
        assert "s1->s2" in out
        assert out.count("t=") == 2

    def test_bad_scenario_fails(self, description_file, tmp_path):
        bad = tmp_path / "bad.storm"
        bad.write_text("at 1 leave link s1--missing\n")
        from repro.topology import ThunderstormError
        with pytest.raises(ThunderstormError):
            main(["scenario", "script", description_file, str(bad)])


class TestScenarioLint:
    def test_clean_file_exits_zero(self, description_file, capsys):
        assert main(["scenario", "lint", description_file]) == 0
        assert capsys.readouterr().err == ""

    def test_error_goes_to_stderr_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.scn"
        bad.write_text('{"scn": 1, "name": "x", "services": '
                       '[{"name": "a"}], "links": '
                       '[{"orig": "a", "dest": "ghost", "up": "1Mbps"}]}\n')
        assert main(["scenario", "lint", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "ghost" in err
        assert "error" in err

    def test_warnings_exit_zero(self, tmp_path, capsys):
        isolated = tmp_path / "isolated.scn"
        isolated.write_text('{"scn": 1, "name": "x", "services": '
                            '[{"name": "a"}, {"name": "b"}, {"name": "c"}],'
                            ' "links": [{"orig": "a", "dest": "b", '
                            '"up": "1Mbps"}]}\n')
        assert main(["scenario", "lint", str(isolated)]) == 0
        err = capsys.readouterr().err
        assert "warning" in err
        assert "c" in err

    def test_aggregates_across_files(self, description_file, tmp_path,
                                     capsys):
        bad = tmp_path / "bad.scn"
        bad.write_text('{"scn": 99}\n')
        assert main(["scenario", "lint", description_file, str(bad)]) == 1
        err = capsys.readouterr().err
        assert "1 error(s) in 2 file(s)" in err


class TestScenarioDiff:
    def test_identical_semantics_exit_zero(self, description_file,
                                           tmp_path, capsys):
        exported = tmp_path / "same.scn"
        assert main(["scenario", "export", description_file,
                     "-o", str(exported)]) == 0
        capsys.readouterr()
        assert main(["scenario", "diff", description_file,
                     str(exported)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_real_change_exits_one(self, description_file, tmp_path,
                                   capsys):
        changed = tmp_path / "changed.txt"
        changed.write_text(DESCRIPTION.replace("latency: 20",
                                               "latency: 25"))
        assert main(["scenario", "diff", description_file,
                     str(changed)]) == 1
        out = capsys.readouterr().out
        assert "~ link s1->s2" in out
        assert "0.02 -> 0.025" in out

    def test_load_failure_exits_two(self, description_file, tmp_path,
                                    capsys):
        assert main(["scenario", "diff", description_file,
                     str(tmp_path / "gone.scn")]) == 2
        assert "cannot load" in capsys.readouterr().err


class TestScenarioExport:
    def test_exported_file_revalidates(self, description_file,
                                       scenario_file, tmp_path, capsys):
        out_path = tmp_path / "exported.scn"
        assert main(["scenario", "export", description_file,
                     "--scenario", scenario_file, "-o", str(out_path)]) == 0
        capsys.readouterr()
        assert main(["validate", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "dynamic events: 2" in out
        assert "c1 -> sv" in out

    def test_export_to_stdout(self, description_file, capsys):
        assert main(["scenario", "export", description_file]) == 0
        out = capsys.readouterr().out
        assert '"scn": 1' in out
        assert '"orig": "c1"' in out

    def test_export_failure_exits_one(self, tmp_path, capsys):
        assert main(["scenario", "export",
                     str(tmp_path / "gone.txt")]) == 1
        assert "cannot export" in capsys.readouterr().err


class TestScenarioFuzz:
    def test_check_corpus_and_bench(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        bench = tmp_path / "bench.json"
        assert main(["scenario", "fuzz", "--seed", "3", "--count", "4",
                     "--check", "--out", str(corpus),
                     "--bench", str(bench), "--quiet"]) == 0
        scn_files = sorted(corpus.glob("*.scn"))
        assert len(scn_files) == 4
        assert main(["scenario", "lint",
                     *[str(path) for path in scn_files]]) == 0
        import json
        recorded = json.loads(bench.read_text())
        assert recorded["count"] == 4
        assert recorded["failures"] == 0
        assert recorded["generate_per_sec"] > 0

    def test_differential_backends(self, capsys):
        assert main(["scenario", "fuzz", "--seed", "5", "--count", "2",
                     "--differential", "kollaps,trickle"]) == 0
        err = capsys.readouterr().err
        assert "kollaps vs trickle agree" in err


class TestParserShape:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_bad_flow_spec(self, description_file):
        with pytest.raises(SystemExit):
            main(["run", description_file, "--flow", "justonename"])

    def test_malformed_flow_rate_errors_cleanly(self, description_file,
                                                capsys):
        with pytest.raises(SystemExit):
            main(["run", description_file, "--flow", "c1:sv:5Mbxps"])
        err = capsys.readouterr().err
        assert "bad rate in flow spec" in err
        assert "5Mbxps" in err


class TestValidatePython:
    def test_validates_example_module(self, tmp_path, capsys):
        module = tmp_path / "scenario_module.py"
        module.write_text(
            "from repro.scenario import Scenario\n"
            "SCENARIO = (Scenario.build('demo')\n"
            "            .service('a').service('b')\n"
            "            .link('a', 'b', latency='1ms', up='1Mbps'))\n")
        assert main(["validate", str(module)]) == 0
        assert "a -> b" in capsys.readouterr().out

    def test_module_without_scenario_rejected(self, tmp_path, capsys):
        module = tmp_path / "empty_module.py"
        module.write_text("x = 1\n")
        assert main(["validate", str(module)]) == 1
        err = capsys.readouterr().err
        assert "SCENARIO" in err
        assert "error" in err

    def test_run_preserves_module_deploy_settings(self, tmp_path, capsys):
        """`run` must not clobber a .py scenario's machines/seed/duration
        with argparse defaults when the flags are not given."""
        module = tmp_path / "deployed.py"
        module.write_text(
            "from repro.scenario import Scenario, flow\n"
            "SCENARIO = (Scenario.build('demo')\n"
            "            .service('a').service('b')\n"
            "            .link('a', 'b', latency='1ms', up='1Mbps')\n"
            "            .workload(flow('a', 'b', key='t'))\n"
            "            .deploy(machines=2, seed=7, duration=2.0))\n")
        assert main(["run", str(module)]) == 0
        out = capsys.readouterr().out
        assert "host-1" in out   # the module's machines=2 was honoured
