"""Tests for the command-line front end."""

import pytest

from repro.cli import main

DESCRIPTION = """\
experiment:
  services:
    name: c1
    image: "iperf"
    name: sv
    image: "nginx"
  bridges:
    name: s1
    name: s2
  links:
    orig: c1
    dest: s1
    latency: 10
    up: 10Mbps
    down: 10Mbps
    orig: s1
    dest: s2
    latency: 20
    up: 100Mbps
    down: 100Mbps
    orig: s2
    dest: sv
    latency: 5
    up: 50Mbps
    down: 50Mbps
"""

SCENARIO = """\
# slow the backbone mid-run, then restore it
at 2 set link s1--s2 latency=80ms
at 4 set link s1--s2 latency=20ms
"""


@pytest.fixture
def description_file(tmp_path):
    path = tmp_path / "experiment.txt"
    path.write_text(DESCRIPTION)
    return str(path)


@pytest.fixture
def scenario_file(tmp_path):
    path = tmp_path / "scenario.storm"
    path.write_text(SCENARIO)
    return str(path)


class TestValidate:
    def test_prints_collapsed_paths(self, description_file, capsys):
        assert main(["validate", description_file]) == 0
        out = capsys.readouterr().out
        assert "c1 -> sv" in out
        assert "10Mbps" in out      # min bandwidth on the path
        assert "35ms" in out        # 10+20+5 ms end-to-end

    def test_with_scenario(self, description_file, scenario_file, capsys):
        assert main(["validate", description_file,
                     "--scenario", scenario_file]) == 0
        assert "dynamic events: 2" in capsys.readouterr().out

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["validate", str(tmp_path / "nope.txt")])


class TestRun:
    def test_run_with_flow(self, description_file, capsys):
        assert main(["run", description_file, "--duration", "5",
                     "--machines", "2", "--flow", "c1:sv"]) == 0
        out = capsys.readouterr().out
        assert "flow c1->sv:" in out

    def test_run_with_scenario(self, description_file, scenario_file,
                               capsys):
        assert main(["run", description_file, "--duration", "5",
                     "--scenario", scenario_file]) == 0
        capsys.readouterr()

    def test_run_on_baseline_backend_reports_metrics(self, description_file,
                                                     capsys):
        assert main(["run", description_file, "--duration", "5",
                     "--backend", "baremetal", "--flow", "c1:sv"]) == 0
        out = capsys.readouterr().out
        assert "backend: baremetal" in out
        assert "workload c1->sv" in out

    def test_run_incompatible_backend_fails_cleanly(self, tmp_path, capsys):
        # Trickle has no packet plane; the ping workload must surface as
        # one clean message, not a traceback.
        module = tmp_path / "pinger.py"
        module.write_text(
            "from repro.scenario import Scenario, ping\n"
            "SCENARIO = (Scenario.build('demo')\n"
            "            .service('a').service('b')\n"
            "            .link('a', 'b', latency='1ms', up='1Mbps')\n"
            "            .workload(ping('a', 'b', count=5))\n"
            "            .deploy(seed=7, duration=2.0))\n")
        assert main(["run", str(module), "--backend", "trickle"]) == 1
        err = capsys.readouterr().err
        assert "cannot run on the 'trickle' backend" in err
        assert "packet plane" in err

    def test_run_unknown_backend_fails_cleanly(self, description_file,
                                               capsys):
        assert main(["run", description_file, "--duration", "5",
                     "--backend", "ns3"]) == 1
        err = capsys.readouterr().err
        assert "ns3" in err and "kollaps" in err


class TestPlan:
    def test_swarm_plan(self, description_file, capsys):
        assert main(["plan", description_file, "--machines", "2"]) == 0
        out = capsys.readouterr().out
        assert "services:" in out
        assert "kollaps-bootstrapper:" in out
        assert "c1 -> host-0" in out

    def test_kubernetes_plan(self, description_file, capsys):
        assert main(["plan", description_file,
                     "--orchestrator", "kubernetes"]) == 0
        out = capsys.readouterr().out
        assert "kind: DaemonSet" in out
        assert "bootstrapper=no" in out


class TestScenario:
    def test_compiles_and_lists_events(self, description_file,
                                       scenario_file, capsys):
        assert main(["scenario", description_file, scenario_file]) == 0
        out = capsys.readouterr().out
        assert "set_link" in out
        assert "s1->s2" in out
        assert out.count("t=") == 2

    def test_bad_scenario_fails(self, description_file, tmp_path):
        bad = tmp_path / "bad.storm"
        bad.write_text("at 1 leave link s1--missing\n")
        from repro.topology import ThunderstormError
        with pytest.raises(ThunderstormError):
            main(["scenario", description_file, str(bad)])


class TestParserShape:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_bad_flow_spec(self, description_file):
        with pytest.raises(SystemExit):
            main(["run", description_file, "--flow", "justonename"])

    def test_malformed_flow_rate_errors_cleanly(self, description_file,
                                                capsys):
        with pytest.raises(SystemExit):
            main(["run", description_file, "--flow", "c1:sv:5Mbxps"])
        err = capsys.readouterr().err
        assert "bad rate in flow spec" in err
        assert "5Mbxps" in err


class TestValidatePython:
    def test_validates_example_module(self, tmp_path, capsys):
        module = tmp_path / "scenario_module.py"
        module.write_text(
            "from repro.scenario import Scenario\n"
            "SCENARIO = (Scenario.build('demo')\n"
            "            .service('a').service('b')\n"
            "            .link('a', 'b', latency='1ms', up='1Mbps'))\n")
        assert main(["validate", str(module)]) == 0
        assert "a -> b" in capsys.readouterr().out

    def test_module_without_scenario_rejected(self, tmp_path):
        module = tmp_path / "empty_module.py"
        module.write_text("x = 1\n")
        from repro.topology import TopologyError
        with pytest.raises(TopologyError):
            main(["validate", str(module)])

    def test_run_preserves_module_deploy_settings(self, tmp_path, capsys):
        """`run` must not clobber a .py scenario's machines/seed/duration
        with argparse defaults when the flags are not given."""
        module = tmp_path / "deployed.py"
        module.write_text(
            "from repro.scenario import Scenario, flow\n"
            "SCENARIO = (Scenario.build('demo')\n"
            "            .service('a').service('b')\n"
            "            .link('a', 'b', latency='1ms', up='1Mbps')\n"
            "            .workload(flow('a', 'b', key='t'))\n"
            "            .deploy(machines=2, seed=7, duration=2.0))\n")
        assert main(["run", str(module)]) == 0
        out = capsys.readouterr().out
        assert "host-1" in out   # the module's machines=2 was honoured
