"""Tests for congestion-gated enforcement and cross-plane contention.

Covers the behaviours behind Figures 6 and 7:

* the Emulation Manager only divides bandwidth between flows competing
  for a saturated link (uncontended paths keep the collapsed maximum);
* link contention has hysteresis, so enforcement does not flap on
  sampling wobble;
* idle chains are restored to their path properties;
* in the ground-truth systems the packet and fluid planes share the
  physical wires.
"""

import pytest

from repro.apps import CurlSwarm, HttpServer, Pinger
from repro.baselines import BareMetalTestbed
from repro.core import EmulationEngine, EngineConfig
from repro.netstack.packet import Packet
from repro.topogen import dumbbell_topology, point_to_point_topology, star_topology

MBPS = 1e6


def engine_for(topology, *, machines=2, seed=7):
    return EmulationEngine(topology, config=EngineConfig(
        machines=machines, seed=seed))


class TestCongestionGating:
    def test_single_flow_keeps_path_maximum(self):
        engine = engine_for(point_to_point_topology(100 * MBPS))
        engine.start_flow("only", "client", "server")
        engine.run(until=5.0)
        htb = engine.tcals["client"].shaping_for("server").htb.rate
        assert htb == pytest.approx(100 * MBPS, rel=0.01)
        assert engine.fluid.mean_throughput("only", 2.0, 5.0) == \
            pytest.approx(100 * MBPS, rel=0.05)

    def test_competing_flows_get_shares(self):
        engine = engine_for(dumbbell_topology(2, shared_bandwidth=50 * MBPS))
        engine.start_flow("a", "client0", "server0")
        engine.start_flow("b", "client1", "server1")
        engine.run(until=6.0)
        rates = [engine.tcals["client0"].shaping_for("server0").htb.rate,
                 engine.tcals["client1"].shaping_for("server1").htb.rate]
        assert sum(rates) == pytest.approx(50 * MBPS, rel=0.10)

    def test_enforcement_stable_at_capacity(self):
        # Flows sitting exactly at their shares must not see the gate
        # flap open (which would burst and then crash them with loss).
        engine = engine_for(dumbbell_topology(2, shared_bandwidth=50 * MBPS))
        engine.start_flow("a", "client0", "server0")
        engine.start_flow("b", "client1", "server1")
        engine.run(until=4.0)
        samples = []
        for step in range(40):
            engine.run(until=4.0 + step * 0.1)
            samples.append(engine.fluid.throughput("a"))
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(25 * MBPS, rel=0.10)
        assert max(samples) - min(samples) < 8 * MBPS

    def test_release_after_departure(self):
        engine = engine_for(dumbbell_topology(2, shared_bandwidth=50 * MBPS))
        engine.start_flow("a", "client0", "server0")
        engine.start_flow("b", "client1", "server1")
        engine.run(until=5.0)
        engine.stop_flow("b")
        engine.run(until=10.0)
        # The survivor is unthrottled back to the bottleneck capacity.
        assert engine.fluid.mean_throughput("a", 8.0, 10.0) == \
            pytest.approx(50 * MBPS, rel=0.10)

    def test_idle_chain_restored_to_path_properties(self):
        engine = engine_for(point_to_point_topology(100 * MBPS))
        engine.start_flow("burst", "client", "server",
                          size_bits=20e6)  # finishes quickly
        engine.run(until=10.0)
        shaping = engine.tcals["client"].shaping_for("server")
        assert shaping.htb.rate == pytest.approx(100 * MBPS, rel=0.01)
        assert shaping.netem.loss == 0.0

    def test_bursty_http_not_strangled(self):
        # The Figure 6 regression: connection-per-request HTTP through a
        # sharing-enabled engine must match the unthrottled engine.
        def throughput(sharing):
            topology = star_topology(["server", "c0"], bandwidth=100 * MBPS,
                                     latency=0.005)
            engine = EmulationEngine(topology, config=EngineConfig(
                machines=2, seed=71, enforce_bandwidth_sharing=sharing))
            server = HttpServer(engine.sim, engine.dataplane, "server")
            swarm = CurlSwarm(engine.sim, engine.dataplane, ["c0"], server)
            engine.run(until=10.0)
            return swarm.stats.throughput(10.0)

        assert throughput(True) == pytest.approx(throughput(False),
                                                 rel=0.05)


class TestContentionHysteresis:
    def make_manager(self):
        engine = engine_for(point_to_point_topology(100 * MBPS),
                            machines=1)
        return next(iter(engine.managers.values()))

    def test_enters_above_threshold(self):
        manager = self.make_manager()
        capacity = next(iter(manager.capacities.values()))
        link_id = next(iter(manager.capacities))
        assert link_id in manager._update_contention({link_id: capacity})
        assert link_id in manager._update_contention({link_id: 0.95 * capacity})

    def test_stays_until_quiet_long_enough(self):
        manager = self.make_manager()
        link_id = next(iter(manager.capacities))
        capacity = manager.capacities[link_id]
        manager._update_contention({link_id: capacity})
        for _ in range(manager._CONTENTION_QUIET_LOOPS - 1):
            assert link_id in manager._update_contention(
                {link_id: 0.5 * capacity})
        assert link_id not in manager._update_contention(
            {link_id: 0.5 * capacity})

    def test_mid_band_usage_keeps_contention(self):
        manager = self.make_manager()
        link_id = next(iter(manager.capacities))
        capacity = manager.capacities[link_id]
        manager._update_contention({link_id: capacity})
        # Usage between EXIT and ENTER: stays contended indefinitely.
        for _ in range(20):
            assert link_id in manager._update_contention(
                {link_id: 0.85 * capacity})

    def test_quiet_streak_resets_on_activity(self):
        manager = self.make_manager()
        link_id = next(iter(manager.capacities))
        capacity = manager.capacities[link_id]
        manager._update_contention({link_id: capacity})
        for _ in range(manager._CONTENTION_QUIET_LOOPS - 1):
            manager._update_contention({link_id: 0.5 * capacity})
        manager._update_contention({link_id: 0.85 * capacity})  # reset
        for _ in range(manager._CONTENTION_QUIET_LOOPS - 1):
            assert link_id in manager._update_contention(
                {link_id: 0.5 * capacity})


class TestCrossPlaneContention:
    def test_bulk_flow_yields_to_packet_traffic(self):
        testbed = BareMetalTestbed(
            star_topology(["a", "b", "c"], bandwidth=100 * MBPS,
                          latency=0.001), seed=3)
        testbed.start_flow("bulk", "a", "c")
        server = HttpServer(testbed.sim, testbed.dataplane, "a",
                            response_bits=512e3)
        client = CurlSwarm(testbed.sim, testbed.dataplane, ["b"], server)
        testbed.run(until=10.0)
        bulk = testbed.fluid.mean_throughput("bulk", 5.0, 10.0)
        http = client.stats.throughput(10.0)
        # Both aggregates share a's 100 Mb/s uplink.
        assert bulk < 95 * MBPS
        assert bulk + http < 110 * MBPS
        assert http > 5 * MBPS

    def test_fluid_load_slows_packets(self):
        def rtt(with_bulk):
            testbed = BareMetalTestbed(
                point_to_point_topology(10 * MBPS, latency=0.010), seed=3)
            if with_bulk:
                testbed.start_flow("bulk", "client", "server")
            pinger = Pinger(testbed.sim, testbed.dataplane, "client",
                            "server", count=50, interval=0.05,
                            size_bits=1500 * 8).start(at=2.0)
            testbed.run(until=6.0)
            return pinger.stats.median_rtt

        # With a bulk flow occupying the wire, the effective packet rate
        # halves, so serialization takes visibly longer.
        assert rtt(True) > rtt(False)

    def test_packet_rate_monitor_reports_traffic(self):
        testbed = BareMetalTestbed(
            point_to_point_topology(100 * MBPS, latency=0.001), seed=3)
        server = HttpServer(testbed.sim, testbed.dataplane, "server")
        CurlSwarm(testbed.sim, testbed.dataplane, ["client"], server)
        testbed.run(until=5.0)
        rates = [testbed.network.packet_rate(link.link_id)
                 for link in testbed.topology.links()]
        assert max(rates) > 1 * MBPS


class TestPingStatistics:
    def test_first_sample_excluded(self):
        from repro.apps.ping import PingStats
        stats = PingStats(rtts=[1.0, 0.1, 0.1, 0.1])
        assert stats.mean_rtt == pytest.approx(0.1)
        assert stats.median_rtt == pytest.approx(0.1)
        assert stats.jitter == 0.0

    def test_single_sample_used_as_is(self):
        from repro.apps.ping import PingStats
        stats = PingStats(rtts=[0.5])
        assert stats.mean_rtt == 0.5
        assert stats.median_rtt == 0.5
