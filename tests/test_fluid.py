"""Fluid engine: AIMD dynamics, allocation, Reno vs Cubic, UDP."""

import pytest

from repro.netstack.fluid import (
    FluidEngine,
    FluidFlow,
    GroundTruthConstraints,
)
from repro.sim import RngRegistry, Simulator
from repro.topogen import dumbbell_topology, point_to_point_topology


def run_single_flow(bandwidth, *, cc="cubic", duration=20.0, latency=0.020,
                    demand=float("inf"), protocol="tcp"):
    sim = Simulator()
    topology = point_to_point_topology(bandwidth, latency=latency)
    engine = FluidEngine(sim, GroundTruthConstraints(topology),
                         rng=RngRegistry(3))
    engine.add_flow(FluidFlow("f", "client", "server",
                              congestion_control=cc, demand=demand,
                              protocol=protocol))
    sim.run(until=duration)
    return engine


class TestSingleFlow:
    @pytest.mark.parametrize("bandwidth", [1e6, 50e6, 1e9])
    def test_saturating_tcp_fills_link(self, bandwidth):
        engine = run_single_flow(bandwidth)
        mean = engine.mean_throughput("f", 5.0, 20.0)
        assert mean == pytest.approx(bandwidth, rel=0.05)

    def test_reno_also_fills_link(self):
        engine = run_single_flow(50e6, cc="reno")
        assert engine.mean_throughput("f", 5.0, 20.0) == \
            pytest.approx(50e6, rel=0.05)

    def test_demand_limited_flow_stays_at_demand(self):
        engine = run_single_flow(100e6, demand=10e6)
        assert engine.mean_throughput("f", 5.0, 20.0) == \
            pytest.approx(10e6, rel=0.02)

    def test_udp_oversubscription_clipped_to_capacity(self):
        engine = run_single_flow(10e6, protocol="udp", demand=20e6)
        assert engine.mean_throughput("f", 2.0, 20.0) == \
            pytest.approx(10e6, rel=0.02)

    def test_slow_start_ramp_visible(self):
        engine = run_single_flow(100e6, latency=0.1)
        early = engine.mean_throughput("f", 0.0, 0.3)
        late = engine.mean_throughput("f", 10.0, 20.0)
        assert early < late * 0.5

    def test_sized_transfer_finishes(self):
        sim = Simulator()
        topology = point_to_point_topology(10e6, latency=0.010)
        engine = FluidEngine(sim, GroundTruthConstraints(topology),
                             rng=RngRegistry(3))
        flow = engine.add_flow(FluidFlow("f", "client", "server",
                                         size_bits=5e6))
        sim.run(until=20.0)
        assert flow.finished
        assert flow.bits_transferred >= 5e6


class TestCompetingFlows:
    def test_equal_rtt_fair_share(self):
        sim = Simulator()
        topology = dumbbell_topology(2, shared_bandwidth=50e6)
        engine = FluidEngine(sim, GroundTruthConstraints(topology),
                             rng=RngRegistry(4))
        engine.add_flow(FluidFlow("f0", "client0", "server0"))
        engine.add_flow(FluidFlow("f1", "client1", "server1"))
        sim.run(until=30.0)
        share0 = engine.mean_throughput("f0", 10.0, 30.0)
        share1 = engine.mean_throughput("f1", 10.0, 30.0)
        assert share0 + share1 == pytest.approx(50e6, rel=0.05)
        assert share0 == pytest.approx(share1, rel=0.15)

    def test_flow_arrival_steals_bandwidth(self):
        sim = Simulator()
        topology = dumbbell_topology(2, shared_bandwidth=50e6)
        engine = FluidEngine(sim, GroundTruthConstraints(topology),
                             rng=RngRegistry(4))
        engine.add_flow(FluidFlow("f0", "client0", "server0"))
        engine.add_flow(FluidFlow("f1", "client1", "server1",
                                  start_time=15.0))
        sim.run(until=30.0)
        solo = engine.mean_throughput("f0", 8.0, 14.0)
        contended = engine.mean_throughput("f0", 22.0, 30.0)
        assert solo == pytest.approx(50e6, rel=0.05)
        assert contended < solo * 0.65

    def test_flow_departure_releases_bandwidth(self):
        sim = Simulator()
        topology = dumbbell_topology(2, shared_bandwidth=50e6)
        engine = FluidEngine(sim, GroundTruthConstraints(topology),
                             rng=RngRegistry(4))
        engine.add_flow(FluidFlow("f0", "client0", "server0"))
        engine.add_flow(FluidFlow("f1", "client1", "server1"))
        sim.at(15.0, lambda: engine.remove_flow("f1"))
        sim.run(until=30.0)
        contended = engine.mean_throughput("f0", 8.0, 14.0)
        solo = engine.mean_throughput("f0", 20.0, 30.0)
        assert solo > contended * 1.4

    def test_udp_flow_squeezes_tcp(self):
        sim = Simulator()
        topology = dumbbell_topology(2, shared_bandwidth=50e6)
        engine = FluidEngine(sim, GroundTruthConstraints(topology),
                             rng=RngRegistry(4))
        engine.add_flow(FluidFlow("tcp", "client0", "server0"))
        engine.add_flow(FluidFlow("udp", "client1", "server1",
                                  protocol="udp", demand=30e6))
        sim.run(until=30.0)
        tcp_share = engine.mean_throughput("tcp", 15.0, 30.0)
        udp_share = engine.mean_throughput("udp", 15.0, 30.0)
        assert udp_share == pytest.approx(25e6, rel=0.25)
        assert tcp_share < 30e6


class TestFlowMechanics:
    def test_duplicate_key_rejected(self):
        sim = Simulator()
        engine = FluidEngine(
            sim, GroundTruthConstraints(point_to_point_topology(1e6)))
        engine.add_flow(FluidFlow("f", "client", "server"))
        with pytest.raises(ValueError):
            engine.add_flow(FluidFlow("f", "client", "server"))

    def test_bad_protocol_rejected(self):
        with pytest.raises(ValueError):
            FluidFlow("f", "a", "b", protocol="sctp")

    def test_bad_cc_rejected(self):
        with pytest.raises(ValueError):
            FluidFlow("f", "a", "b", congestion_control="vegas")

    def test_reno_backoff_halves_window(self):
        flow = FluidFlow("f", "a", "b", congestion_control="reno", rtt=0.02)
        flow.cwnd = 100 * flow.mss_bits
        flow.in_slow_start = False
        flow.advance(1.0, 0.01, achieved=1e6, lost=True)
        assert flow.cwnd == pytest.approx(50 * flow.mss_bits)
        assert flow.loss_events == 1

    def test_cubic_backoff_factor(self):
        flow = FluidFlow("f", "a", "b", congestion_control="cubic", rtt=0.02)
        flow.cwnd = 100 * flow.mss_bits
        flow.in_slow_start = False
        flow.advance(1.0, 0.01, achieved=1e6, lost=True)
        assert flow.cwnd == pytest.approx(70 * flow.mss_bits)

    def test_backoff_at_most_once_per_rtt(self):
        flow = FluidFlow("f", "a", "b", congestion_control="reno", rtt=0.1)
        flow.cwnd = 100 * flow.mss_bits
        flow.in_slow_start = False
        flow.advance(1.0, 0.01, achieved=1e6, lost=True)
        after_first = flow.cwnd
        flow.advance(1.01, 0.01, achieved=1e6, lost=True)  # within one RTT
        assert flow.cwnd >= after_first  # no second halving

    def test_rtt_set_from_provider_on_add(self):
        sim = Simulator()
        topology = point_to_point_topology(1e6, latency=0.030)
        engine = FluidEngine(sim, GroundTruthConstraints(topology))
        flow = engine.add_flow(FluidFlow("f", "client", "server"))
        assert flow.rtt == pytest.approx(0.060)
