"""Topology generators: shapes, sizes, determinism, embedded AWS data."""

import pytest

from repro.core import collapse
from repro.topogen import (
    AWS_REGION_LATENCY_FROM_US_EAST_1,
    aws_mesh_topology,
    aws_star_topology,
    dumbbell_topology,
    point_to_point_topology,
    scale_free_topology,
    star_topology,
    throttling_topology,
    tree_topology,
)
from repro.topogen.aws import region_rtt


class TestSimpleShapes:
    def test_point_to_point_collapses_to_rate(self):
        topology = point_to_point_topology(10e6, latency=0.010)
        collapsed = collapse(topology)
        path = collapsed.require_path("client", "server")
        assert path.bandwidth == 10e6
        assert path.latency == pytest.approx(0.010)

    def test_dumbbell_shares_one_link(self):
        topology = dumbbell_topology(3, shared_bandwidth=50e6)
        collapsed = collapse(topology)
        shared_ids = None
        for index in range(3):
            path = collapsed.require_path(f"client{index}", f"server{index}")
            middle = set(path.link_ids) - {path.link_ids[0],
                                           path.link_ids[-1]}
            shared_ids = middle if shared_ids is None else shared_ids & middle
        assert shared_ids  # every pair crosses the same shared link

    def test_dumbbell_size_validation(self):
        with pytest.raises(ValueError):
            dumbbell_topology(0)

    def test_star_all_pairs_two_hops(self):
        topology = star_topology(["a", "b", "c"])
        collapsed = collapse(topology)
        assert collapsed.require_path("a", "b").properties.hops == 2

    def test_tree_leaf_count(self):
        topology = tree_topology(depth=2, fanout=3)
        assert len(topology.container_names()) == 9
        assert len(topology.bridges) == 4  # root + 3 level-1

    def test_tree_depth_validation(self):
        with pytest.raises(ValueError):
            tree_topology(0, 2)


class TestScaleFree:
    def test_element_count(self):
        topology = scale_free_topology(300, seed=1)
        elements = len(topology.container_names()) + len(topology.bridges)
        assert elements == 300
        # Paper's ratio: about a third of the elements are switches.
        assert len(topology.bridges) == pytest.approx(100, abs=2)

    def test_deterministic_for_seed(self):
        first = scale_free_topology(100, seed=7)
        second = scale_free_topology(100, seed=7)
        assert first.describe() == second.describe()
        assert scale_free_topology(100, seed=8).describe() != \
            first.describe()

    def test_all_nodes_connected(self):
        topology = scale_free_topology(200, seed=3)
        collapsed = collapse(topology)
        containers = topology.container_names()
        assert collapsed.pair_count() == \
            len(containers) * (len(containers) - 1)

    def test_degree_distribution_skewed(self):
        """Preferential attachment: a hub switch with many more links."""
        topology = scale_free_topology(400, seed=5)
        degree = {}
        for link in topology.links():
            degree[link.source] = degree.get(link.source, 0) + 1
        switch_degrees = sorted(
            (degree.get(name, 0) for name in topology.bridges),
            reverse=True)
        assert switch_degrees[0] > 4 * switch_degrees[len(switch_degrees) // 2]

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            scale_free_topology(3)


class TestAwsTopologies:
    def test_star_carries_table3_latencies(self):
        topology = aws_star_topology()
        collapsed = collapse(topology)
        for region, (latency_ms, jitter_ms) in \
                AWS_REGION_LATENCY_FROM_US_EAST_1.items():
            path = collapsed.require_path("probe", f"target-{region}")
            # The probe's 0.1 ms access hop rides on top of the region link.
            assert path.latency == pytest.approx(
                latency_ms / 1000.0 + 0.0001, rel=0.001)
            assert path.properties.jitter == pytest.approx(
                jitter_ms / 1000.0, rel=0.01)

    def test_star_reverse_path_jitter_free_by_default(self):
        collapsed = collapse(aws_star_topology())
        back = collapsed.require_path("target-eu-west-1", "probe")
        assert back.properties.jitter == 0.0

    def test_mesh_rtts(self):
        topology = aws_mesh_topology(["frankfurt", "sydney"], 2,
                                     service_prefix="n")
        collapsed = collapse(topology)
        rtt = collapsed.rtt("n-frankfurt-0", "n-sydney-0")
        assert rtt == pytest.approx(0.290 + 0.002, rel=0.02)

    def test_mesh_rtt_scale(self):
        half = aws_mesh_topology(["frankfurt", "sydney"], 1,
                                 service_prefix="n", rtt_scale=0.5)
        collapsed = collapse(half)
        assert collapsed.rtt("n-frankfurt-0", "n-sydney-0") == \
            pytest.approx(0.145 + 0.002, rel=0.02)

    def test_region_rtt_symmetric_lookup(self):
        assert region_rtt("sydney", "frankfurt") == \
            region_rtt("frankfurt", "sydney")
        with pytest.raises(KeyError):
            region_rtt("frankfurt", "atlantis")

    def test_intra_region_rtt_small(self):
        assert region_rtt("sydney", "sydney") < 0.005


class TestSection54:
    def test_shape(self):
        topology = throttling_topology()
        assert len(topology.services) == 12
        assert len(topology.bridges) == 3

    def test_client_access_profiles(self):
        topology = throttling_topology()
        assert topology.get_link("c1", "b1").properties.bandwidth == 50e6
        assert topology.get_link("c1", "b1").properties.latency == 0.010
        assert topology.get_link("c3", "b1").properties.bandwidth == 10e6
        assert topology.get_link("c6", "b2").properties.bandwidth == 10e6

    def test_paper_rtts(self):
        """RTTs that drive the share model: 70/60/60/50/40/40 ms."""
        collapsed = collapse(throttling_topology())
        expected = {"c1": 0.070, "c2": 0.060, "c3": 0.060,
                    "c4": 0.050, "c5": 0.040, "c6": 0.040}
        for client, rtt in expected.items():
            index = client[1]
            assert collapsed.rtt(client, f"s{index}") == \
                pytest.approx(rtt, rel=0.001), client

    def test_bottleneck_capacities(self):
        topology = throttling_topology()
        assert topology.get_link("b1", "b2").properties.bandwidth == 50e6
        assert topology.get_link("b2", "b3").properties.bandwidth == 100e6
