"""§6 limitation: flows shorter than one emulation-loop iteration.

The paper is explicit that Kollaps "will either fail to capture and update
the bandwidth sharing for short flows that span a time interval shorter
than a single iteration, or would react after the flow has ended".  This
test *reproduces the limitation* (it is behaviour, not a bug): a flow that
finishes within one loop period never has its share enforced, while a flow
spanning several periods does.
"""

import pytest

from repro.core import EmulationEngine, EngineConfig
from repro.topogen import dumbbell_topology

MBPS = 1e6


def build_engine(loop_period):
    return EmulationEngine(
        dumbbell_topology(2, shared_bandwidth=50 * MBPS,
                          access_bandwidth=200 * MBPS),
        config=EngineConfig(machines=1, seed=9, loop_period=loop_period))


class TestShortFlowLimitation:
    def test_sub_period_flow_escapes_enforcement(self):
        engine = build_engine(loop_period=0.5)
        # A long-lived flow first converges to its share of the bottleneck.
        engine.start_flow("long", "client0", "server0")
        engine.run(until=5.0)
        enforcements_before = engine.managers["host-0"].enforcements
        # A 2 Mbit burst at 200 Mb/s lasts ~10 ms << the 500 ms loop.
        engine.start_flow("burst", "client1", "server1", size_bits=2e6)
        engine.run(until=5.4)  # still before the next loop tick
        flow = engine.fluid.flows["burst"]
        assert flow.finished
        # The burst's htb class was never updated by the loop: the rate is
        # still the initial collapsed-path bandwidth (50 Mb/s), not a
        # contended share.
        assert engine.tcals["client1"].shaping_for("server1").htb.rate == \
            pytest.approx(50 * MBPS)

    def test_multi_period_flow_gets_enforced(self):
        engine = build_engine(loop_period=0.05)
        engine.start_flow("long", "client0", "server0")
        engine.start_flow("other", "client1", "server1")
        engine.run(until=5.0)
        # Both flows now hold enforced shares summing to the bottleneck.
        rates = [engine.tcals["client0"].shaping_for("server0").htb.rate,
                 engine.tcals["client1"].shaping_for("server1").htb.rate]
        assert sum(rates) == pytest.approx(50 * MBPS, rel=0.15)

    def test_shorter_loop_reacts_faster(self):
        """The reaction-time knob the paper's future work targets."""
        def time_to_throttle(loop_period):
            engine = build_engine(loop_period)
            engine.start_flow("long", "client0", "server0")
            engine.run(until=3.0)
            engine.start_flow("late", "client1", "server1")
            engine.run(until=8.0)
            tcal = engine.tcals["client0"]
            series = engine.fluid.series("long")
            for when, rate in series:
                if when > 3.0 and rate < 30 * MBPS:
                    return when - 3.0
            return float("inf")

        fast = time_to_throttle(0.05)
        slow = time_to_throttle(1.0)
        assert fast < slow
