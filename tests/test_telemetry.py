"""Unit tests for repro.telemetry: spans, metrics, export, logging."""

import json
import logging
import pickle
import threading

import pytest

from repro import telemetry
from repro.telemetry import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NULL_SPAN,
    Stopwatch,
    Tracer,
    configure_logging,
    format_summary,
    format_top,
    get_logger,
    load_trace,
    summarize,
    to_chrome,
    top_spans,
)


@pytest.fixture(autouse=True)
def clean_telemetry(monkeypatch):
    """Every test starts disabled with a fresh global registry."""
    monkeypatch.delenv(telemetry.TRACE_ENV_VAR, raising=False)
    telemetry.disable()
    telemetry.metrics.clear()
    yield
    telemetry.disable()
    telemetry.metrics.clear()


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as watch:
            pass
        assert watch.elapsed >= 0.0

    def test_restart_resets_origin(self):
        watch = Stopwatch()
        watch.stop()
        first = watch.elapsed
        watch.restart()
        watch.stop()
        assert watch.elapsed >= 0.0
        assert first >= 0.0


class TestSpans:
    def test_disabled_returns_shared_null_span(self):
        assert not telemetry.enabled()
        span = telemetry.span("collapse.all_pairs", services=3)
        assert span is NULL_SPAN
        with span as inner:
            inner.set(anything=1).finish()   # full Span surface, no-ops

    def test_enable_records_spans_in_memory(self):
        telemetry.enable()
        with telemetry.span("fluid.step", flows=2):
            pass
        spans = telemetry.tracer().spans
        assert len(spans) == 1
        record = spans[0]
        assert record["name"] == "fluid.step"
        assert record["attrs"] == {"flows": 2}
        assert record["dur"] >= 0.0
        assert record["parent"] is None

    def test_nesting_links_parents(self):
        telemetry.enable()
        with telemetry.span("campaign.point"):
            with telemetry.span("backend.advance"):
                with telemetry.span("fluid.step"):
                    pass
        spans = {s["name"]: s for s in telemetry.tracer().spans}
        assert spans["campaign.point"]["parent"] is None
        assert spans["backend.advance"]["parent"] == \
            spans["campaign.point"]["id"]
        assert spans["fluid.step"]["parent"] == spans["backend.advance"]["id"]

    def test_siblings_share_a_parent(self):
        telemetry.enable()
        with telemetry.span("campaign.point"):
            with telemetry.span("backend.prepare"):
                pass
            with telemetry.span("backend.advance"):
                pass
        spans = {s["name"]: s for s in telemetry.tracer().spans}
        root = spans["campaign.point"]["id"]
        assert spans["backend.prepare"]["parent"] == root
        assert spans["backend.advance"]["parent"] == root

    def test_exception_tags_error_attribute(self):
        telemetry.enable()
        with pytest.raises(ValueError):
            with telemetry.span("backend.collect"):
                raise ValueError("boom")
        (record,) = telemetry.tracer().spans
        assert record["attrs"]["error"] == "ValueError"

    def test_finish_is_idempotent(self):
        telemetry.enable()
        span = telemetry.span("engine.apply_state")
        span.finish()
        span.finish()
        assert len(telemetry.tracer().spans) == 1

    def test_leaked_inner_span_does_not_corrupt_parentage(self):
        telemetry.enable()
        outer = telemetry.span("campaign.point")
        telemetry.span("backend.advance")      # leaked: never finished
        outer.finish()                         # pops through the leak
        with telemetry.span("campaign.point2"):
            pass
        later = telemetry.tracer().spans[-1]
        assert later["parent"] is None

    def test_keep_bound_drops_excess(self):
        tracer = Tracer(keep=2)
        for index in range(5):
            tracer._finish(tracer.start(f"s{index}", {}))
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3

    def test_threads_get_independent_stacks(self):
        telemetry.enable()
        done = threading.Event()

        def worker():
            with telemetry.span("worker.point"):
                pass
            done.set()

        with telemetry.span("campaign.point"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert done.is_set()
        spans = {s["name"]: s for s in telemetry.tracer().spans}
        # The thread's span must NOT be parented under the main thread's.
        assert spans["worker.point"]["parent"] is None


class TestTraceFiles:
    def test_directory_sink_writes_jsonl(self, tmp_path):
        tracer = telemetry.enable(str(tmp_path))
        with telemetry.span("collapse.all_pairs", pairs=6):
            pass
        telemetry.flush()
        path = tracer.path()
        assert path is not None and path.endswith(".jsonl")
        lines = [json.loads(line) for line in
                 open(path, encoding="utf-8") if line.strip()]
        assert lines[0]["name"] == "collapse.all_pairs"
        assert lines[0]["attrs"] == {"pairs": 6}

    def test_enable_exports_env_var_for_children(self, tmp_path):
        import os
        telemetry.enable(str(tmp_path))
        assert os.environ[telemetry.TRACE_ENV_VAR] == str(tmp_path)
        telemetry.disable()
        assert telemetry.TRACE_ENV_VAR not in os.environ

    def test_load_trace_roundtrip(self, tmp_path):
        telemetry.enable(str(tmp_path))
        with telemetry.span("campaign.point"):
            with telemetry.span("fluid.step"):
                pass
        telemetry.flush()
        telemetry.disable()
        spans = load_trace(str(tmp_path))
        assert {s["name"] for s in spans} == {"campaign.point", "fluid.step"}

    def test_load_trace_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(str(tmp_path / "nope"))

    def test_load_trace_bad_json_names_line(self, tmp_path):
        bad = tmp_path / "trace-1.jsonl"
        bad.write_text('{"name": "a", "dur": 1.0}\nnot json\n')
        with pytest.raises(ValueError, match=r"trace-1\.jsonl:2"):
            load_trace(str(tmp_path))

    def test_non_serialisable_attrs_fall_back_to_repr(self, tmp_path):
        telemetry.enable(str(tmp_path))
        with telemetry.span("engine.apply_state", obj=object()):
            pass
        telemetry.flush()
        spans = load_trace(str(tmp_path))
        assert "object object" in spans[0]["attrs"]["obj"]


class TestEnvAutoEnable:
    def test_memory_values(self, monkeypatch):
        for value in ("1", "true", "mem"):
            monkeypatch.setenv(telemetry.TRACE_ENV_VAR, value)
            telemetry.disable()
            monkeypatch.setenv(telemetry.TRACE_ENV_VAR, value)
            telemetry._env_autoenable()
            assert telemetry.enabled()
            assert telemetry.tracer().directory is None

    def test_directory_value(self, monkeypatch, tmp_path):
        monkeypatch.setenv(telemetry.TRACE_ENV_VAR, str(tmp_path))
        telemetry._env_autoenable()
        assert telemetry.enabled()
        assert telemetry.tracer().directory == str(tmp_path)

    def test_falsy_values_stay_off(self, monkeypatch):
        for value in ("", "0", "false", "off"):
            monkeypatch.setenv(telemetry.TRACE_ENV_VAR, value)
            telemetry._env_autoenable()
            assert not telemetry.enabled()


class TestMetrics:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("sharing.solver_calls").inc()
        registry.counter("sharing.solver_calls").inc(2.5)
        snap = registry.snapshot()
        assert snap["sharing.solver_calls"] == {"type": "counter",
                                                "value": 3.5}

    def test_gauge_sets_and_incs(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("fleet.workers")
        gauge.set(3)
        gauge.inc(-1)
        assert registry.snapshot()["fleet.workers"]["value"] == 2.0

    def test_histogram_buckets_and_stats(self):
        registry = MetricsRegistry()
        hist = registry.histogram("point_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        doc = registry.snapshot()["point_seconds"]
        assert doc["buckets"] == [0.1, 1.0]
        assert doc["counts"] == [1, 1, 1]      # +inf overflow bucket
        assert doc["count"] == 3
        assert doc["sum"] == pytest.approx(5.55)
        assert doc["min"] == 0.05 and doc["max"] == 5.0
        assert hist.mean == pytest.approx(5.55 / 3)

    def test_snapshot_is_name_sorted_and_picklable(self):
        registry = MetricsRegistry()
        registry.counter("zulu").inc()
        registry.counter("alpha").inc()
        registry.histogram("mid").observe(0.2)
        snap = registry.snapshot()
        assert list(snap) == sorted(snap)
        assert pickle.loads(pickle.dumps(snap)) == snap
        assert json.loads(json.dumps(snap)) == snap

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("thing")
        with pytest.raises(TypeError, match="already registered"):
            registry.histogram("thing")

    def test_merge_adds_counters_and_histograms(self):
        worker_a, worker_b = MetricsRegistry(), MetricsRegistry()
        for registry, n in ((worker_a, 2), (worker_b, 3)):
            registry.counter("worker.points").inc(n)
            registry.gauge("worker.queue").set(n)
            registry.histogram("worker.point_seconds").observe(float(n))
        fleet = MetricsRegistry()
        fleet.merge(worker_a.snapshot())
        fleet.merge(worker_b.snapshot())
        snap = fleet.snapshot()
        assert snap["worker.points"]["value"] == 5.0
        assert snap["worker.queue"]["value"] == 3.0      # last writer wins
        hist = snap["worker.point_seconds"]
        assert hist["count"] == 2
        assert hist["sum"] == 5.0
        assert hist["min"] == 2.0 and hist["max"] == 3.0

    def test_merge_then_snapshot_equals_sum(self):
        left = MetricsRegistry()
        left.counter("c").inc(1)
        merged = MetricsRegistry()
        merged.merge(left.snapshot())
        merged.merge(left.snapshot())
        assert merged.snapshot()["c"]["value"] == 2.0

    def test_delta_since_counters_only(self):
        registry = MetricsRegistry()
        registry.counter("sharing.solver_seconds").inc(1.0)
        registry.gauge("queue").set(9)
        before = registry.snapshot()
        registry.counter("sharing.solver_seconds").inc(0.5)
        registry.counter("collapse.recomputes").inc(2)
        delta = registry.delta_since(before)
        assert delta["sharing.solver_seconds"] == pytest.approx(0.5)
        assert delta["collapse.recomputes"] == 2.0
        assert "queue" not in delta

    def test_default_buckets_cover_engine_scales(self):
        assert DEFAULT_BUCKETS[0] <= 0.001        # one fluid step
        assert DEFAULT_BUCKETS[-1] >= 300.0       # a long campaign point

    def test_clear_empties_registry(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.clear()
        assert registry.snapshot() == {}


def _span(name, span_id, parent=None, start=0.0, dur=1.0,
          pid=1, tid=1, **attrs):
    record = {"name": name, "id": span_id, "parent": parent,
              "start": start, "dur": dur, "cpu": dur, "pid": pid, "tid": tid}
    if attrs:
        record["attrs"] = attrs
    return record


class TestExport:
    def test_to_chrome_complete_events(self):
        doc = to_chrome([_span("campaign.point", 1, dur=2.0, label="x")])
        (event,) = doc["traceEvents"]
        assert event["ph"] == "X"
        assert event["dur"] == pytest.approx(2e6)   # microseconds
        assert event["cat"] == "campaign"
        assert event["args"] == {"label": "x"}
        json.dumps(doc)                             # must serialise

    def test_summarize_self_time_excludes_children(self):
        spans = [
            _span("campaign.point", 1, dur=10.0),
            _span("backend.advance", 2, parent=1, dur=8.0),
            _span("fluid.step", 3, parent=2, dur=6.0),
        ]
        summary = summarize(spans)
        assert summary["spans"] == 3
        assert summary["root_seconds"] == pytest.approx(10.0)
        assert summary["self_seconds"] == pytest.approx(10.0)
        layers = summary["layers"]
        assert layers["fluid"]["self"] == pytest.approx(6.0)
        assert layers["backend"]["self"] == pytest.approx(2.0)
        assert layers["campaign"]["self"] == pytest.approx(2.0)
        assert sum(doc["share"] for doc in layers.values()) \
            == pytest.approx(1.0)

    def test_summarize_keys_children_per_pid_tid(self):
        # Same ids in two processes must not cross-attribute self time.
        spans = [
            _span("campaign.point", 1, dur=4.0, pid=1),
            _span("campaign.point", 1, dur=4.0, pid=2),
            _span("fluid.step", 2, parent=1, dur=3.0, pid=1),
        ]
        summary = summarize(spans)
        assert summary["layers"]["campaign"]["self"] == pytest.approx(5.0)

    def test_top_spans_ranked_by_duration(self):
        spans = [_span("a.x", 1, dur=1.0), _span("b.y", 2, dur=3.0),
                 _span("c.z", 3, dur=2.0)]
        assert [s["name"] for s in top_spans(spans, 2)] == ["b.y", "c.z"]

    def test_format_summary_and_top_render(self):
        spans = [_span("campaign.point", 1, dur=1.0, status="ok")]
        text = format_summary(summarize(spans))
        assert "layer shares" in text and "campaign.point" in text
        top = format_top(top_spans(spans))
        assert "campaign.point" in top and "status=ok" in top

    def test_summarize_empty_trace(self):
        summary = summarize([])
        assert summary["spans"] == 0
        assert summary["layers"] == {}
        format_summary(summary)                     # must not divide by zero


class TestLogging:
    def test_verbosity_levels(self):
        assert configure_logging(-1).level == logging.ERROR
        assert configure_logging(0).level == logging.WARNING
        assert configure_logging(1).level == logging.INFO
        assert configure_logging(2).level == logging.DEBUG

    def test_reconfigure_replaces_handler(self):
        logger = configure_logging(1)
        configure_logging(2)
        owned = [h for h in logger.handlers
                 if getattr(h, "_repro_telemetry", False)]
        assert len(owned) == 1

    def test_get_logger_prefixes_repro(self):
        assert get_logger("campaign.worker").name == "repro.campaign.worker"
        assert get_logger("repro.core").name == "repro.core"
        assert get_logger("repro").name == "repro"

    def test_messages_reach_stream(self):
        import io
        stream = io.StringIO()
        configure_logging(1, stream=stream)
        get_logger("test_telemetry").info("lease granted")
        assert "lease granted" in stream.getvalue()
        assert "repro.test_telemetry" in stream.getvalue()
