"""The vectorized engine core: backend equivalence and collapse memoization.

Two families of guarantees from docs/performance.md are pinned here:

* the numpy and python solver backends are interchangeable — identical
  allocations within 1e-9 relative on hand-built problems, hypothesis-
  generated problems and whole fuzz-corpus scenarios, and identical paper
  Figure-8 stage values;
* the collapse memo's three tiers (hit / incremental re-property / full
  recompute) trigger exactly when the structural topology signature says
  they should, observed through the telemetry counters the production
  code maintains.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import telemetry
from repro.core import (FlowDemand, clear_collapse_cache, collapse,
                        collapse_cache_stats, rtt_aware_max_min,
                        set_solver_backend, solver_backend,
                        topology_signature)
from repro.core.sharing import ENGINE_ENV_VAR, clear_matrix_cache
from repro.scenario.dsl.fuzz import fuzz_corpus
from repro.scenario.topologies import scale_free

MBPS = 1e6

HAVE_NUMPY = True
try:
    import numpy  # noqa: F401  (presence probe only)
except ImportError:
    HAVE_NUMPY = False

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY,
                                 reason="numpy not installed")


@pytest.fixture(autouse=True)
def _clean_backend_state():
    """Every test starts and ends on auto backend with empty caches."""
    set_solver_backend(None)
    clear_collapse_cache()
    clear_matrix_cache()
    yield
    set_solver_backend(None)
    clear_collapse_cache()
    clear_matrix_cache()
    telemetry.disable()
    telemetry.metrics.clear()


def solve_with(backend, flows, capacities):
    set_solver_backend(backend)
    try:
        return rtt_aware_max_min(flows, capacities)
    finally:
        set_solver_backend(None)


def assert_allocations_agree(first, second, *, rel=1e-9):
    assert set(first) == set(second)
    for key, value in first.items():
        scale = max(abs(value), 1.0)
        assert abs(second[key] - value) <= rel * scale, (
            key, value, second[key])


# ---------------------------------------------------------------------------
# Backend selection.
# ---------------------------------------------------------------------------

class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            set_solver_backend("fortran")

    def test_auto_aliases_none(self):
        set_solver_backend("auto")
        assert solver_backend() in ("numpy", "python")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "python")
        assert solver_backend() == "python"

    def test_code_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "python")
        if HAVE_NUMPY:
            set_solver_backend("numpy")
            assert solver_backend() == "numpy"

    @needs_numpy
    def test_auto_prefers_numpy(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        assert solver_backend() == "numpy"

    @needs_numpy
    def test_tiny_problems_stay_scalar_in_auto_mode(self, monkeypatch):
        """Under the vectorization threshold, auto mode must not pay numpy
        array-setup costs: no membership matrix is built."""
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        telemetry.metrics.clear()
        telemetry.enable()
        flows = [FlowDemand("f", 0.01, (0,), path_bandwidth=MBPS)]
        rtt_aware_max_min(flows, {0: MBPS})
        assert telemetry.metrics.counter("sharing.matrix_builds").value == 0
        set_solver_backend("numpy")           # explicit force is honoured
        rtt_aware_max_min(flows, {0: MBPS})
        assert telemetry.metrics.counter("sharing.matrix_builds").value == 1


# ---------------------------------------------------------------------------
# numpy/python equivalence.
# ---------------------------------------------------------------------------

@st.composite
def allocation_problem(draw):
    """Like the strategy in test_core_sharing, plus finite demands and
    enough flows to exercise the vectorized path proper."""
    link_count = draw(st.integers(min_value=1, max_value=8))
    capacities = {i: draw(st.floats(min_value=0.5 * MBPS,
                                    max_value=200 * MBPS))
                  for i in range(link_count)}
    flow_count = draw(st.integers(min_value=1, max_value=16))
    flows = []
    for index in range(flow_count):
        path_length = draw(st.integers(min_value=1, max_value=link_count))
        path = tuple(draw(st.permutations(range(link_count)))[:path_length])
        rtt = draw(st.floats(min_value=0.001, max_value=0.5))
        demand = draw(st.one_of(
            st.just(float("inf")),
            st.floats(min_value=0.1 * MBPS, max_value=100 * MBPS)))
        flows.append(FlowDemand(
            f"f{index}", rtt, path, demand=demand,
            path_bandwidth=min(capacities[i] for i in path)))
    return flows, capacities


@needs_numpy
class TestBackendEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(allocation_problem())
    def test_backends_agree_on_random_problems(self, problem):
        flows, capacities = problem
        assert_allocations_agree(solve_with("python", flows, capacities),
                                 solve_with("numpy", flows, capacities))

    def test_backends_agree_on_fuzz_corpus(self):
        """Whole generated scenarios: collapse each fuzz topology, build
        one saturating FlowDemand per container pair, solve both ways."""
        compared = 0
        for builder in fuzz_corpus(seed=7, count=6):
            topology = builder.compile().topology
            collapsed = collapse(topology, memo=False)
            capacities = {
                link.link_id: link.properties.bandwidth
                for link in topology.links()
                if link.properties.bandwidth != float("inf")}
            flows = []
            for path in collapsed.paths():
                flows.append(FlowDemand(
                    (path.source, path.destination),
                    collapsed.rtt(path.source, path.destination),
                    path.link_ids,
                    path_bandwidth=path.properties.bandwidth))
            if not flows:
                continue
            assert_allocations_agree(
                solve_with("python", flows, capacities),
                solve_with("numpy", flows, capacities))
            compared += len(flows)
        assert compared > 0

    def test_figure8_stages_identical_across_backends(self):
        """The §5.4 schedule — the repo's golden allocation — must not
        depend on which backend solved it."""
        from test_core_sharing import (SECTION54_CAPACITIES, section54_flows)
        stages = [["c1"], ["c1", "c2"], ["c1", "c2", "c3"],
                  ["c1", "c2", "c3", "c4"],
                  ["c1", "c2", "c3", "c4", "c5"],
                  ["c1", "c2", "c3", "c4", "c5", "c6"]]
        for active in stages:
            flows = section54_flows(active)
            assert_allocations_agree(
                solve_with("python", flows, SECTION54_CAPACITIES),
                solve_with("numpy", flows, SECTION54_CAPACITIES))

    def test_duplicate_link_traversal_counted_twice(self):
        """A path crossing the same link twice consumes double capacity on
        it — both backends must account the repeat occurrence."""
        flows = [FlowDemand("loop", 0.02, (0, 1, 0),
                            path_bandwidth=float("inf"))] * 1
        flows = flows + [FlowDemand(f"pad{i}", 0.02, (1,),
                                    path_bandwidth=float("inf"))
                         for i in range(9)]       # clear the threshold
        capacities = {0: 10 * MBPS, 1: 100 * MBPS}
        python = solve_with("python", flows, capacities)
        vectorized = solve_with("numpy", flows, capacities)
        assert_allocations_agree(python, vectorized)
        assert python["loop"] == pytest.approx(5 * MBPS, rel=1e-6)


# ---------------------------------------------------------------------------
# Collapse memoization.
# ---------------------------------------------------------------------------

def counter(name):
    return telemetry.metrics.counter(name).value


@pytest.fixture
def traced():
    telemetry.metrics.clear()
    telemetry.enable()
    yield
    telemetry.disable()
    telemetry.metrics.clear()


def small_topology(seed=3):
    return scale_free(40, seed=seed).compile().topology


class TestCollapseMemo:
    def test_structural_copy_is_a_hit(self, traced):
        topology = small_topology()
        collapse(topology)
        recomputes = counter("collapse.recomputes")
        twin = topology.copy()
        assert topology_signature(twin) == topology_signature(topology)
        collapse(twin)
        assert counter("collapse.memo_hits") == 1
        assert counter("collapse.recomputes") == recomputes

    def test_hit_shares_the_path_table(self, traced):
        topology = small_topology()
        first = collapse(topology)
        second = collapse(topology.copy())
        assert second.path is not None
        for path in first.paths():
            assert second.path(path.source, path.destination) is path

    def test_bandwidth_only_change_recomposes_incrementally(self, traced):
        topology = small_topology()
        baseline = collapse(topology)
        recomputes = counter("collapse.recomputes")
        # Halve a link that is some path's bottleneck, so the change is
        # observable in the collapsed table.
        by_id = {link.link_id: link for link in topology.links()}
        target = next(
            by_id[link_id]
            for path in baseline.paths() for link_id in path.link_ids
            if by_id[link_id].properties.bandwidth
            == path.properties.bandwidth)
        mutated = topology.copy()
        mutated.update_link(target.source, target.destination,
                            bandwidth=target.properties.bandwidth / 2)
        fresh = collapse(mutated)
        assert counter("collapse.incremental_recomputes") == 1
        assert counter("collapse.recomputes") == recomputes   # no Dijkstra
        # The incremental result must equal a genuine cold collapse.
        cold = collapse(mutated, memo=False)
        for path in cold.paths():
            twin = fresh.path(path.source, path.destination)
            assert twin.properties == path.properties
            assert twin.link_ids == path.link_ids

    def test_latency_change_recomputes_fully(self, traced):
        topology = small_topology()
        collapse(topology)
        recomputes = counter("collapse.recomputes")
        mutated = topology.copy()
        link = next(iter(mutated.links()))
        mutated.update_link(link.source, link.destination,
                            latency=link.properties.latency * 3)
        collapse(mutated)
        assert counter("collapse.recomputes") == recomputes + 1
        assert counter("collapse.incremental_recomputes") == 0

    def test_cache_is_bounded_lru(self, traced, monkeypatch):
        monkeypatch.setenv("REPRO_COLLAPSE_CACHE", "2")
        assert collapse_cache_stats()["capacity"] == 2
        topologies = [small_topology(seed=index) for index in range(3)]
        for topology in topologies:
            collapse(topology)
        assert collapse_cache_stats()["entries"] == 2
        assert counter("collapse.memo_invalidations") == 1
        # The oldest entry was evicted: collapsing it again is a miss.
        hits = counter("collapse.memo_hits")
        collapse(topologies[0])
        assert counter("collapse.memo_hits") == hits

    def test_zero_capacity_disables_memoization(self, traced, monkeypatch):
        monkeypatch.setenv("REPRO_COLLAPSE_CACHE", "0")
        topology = small_topology()
        collapse(topology)
        collapse(topology)
        assert counter("collapse.memo_hits") == 0
        assert counter("collapse.recomputes") == 2
        assert collapse_cache_stats()["entries"] == 0

    def test_clear_turns_hits_back_into_misses(self, traced):
        topology = small_topology()
        collapse(topology)
        clear_collapse_cache()
        assert collapse_cache_stats()["entries"] == 0
        recomputes = counter("collapse.recomputes")
        collapse(topology)
        assert counter("collapse.recomputes") == recomputes + 1

    def test_memo_false_neither_reads_nor_populates(self, traced):
        topology = small_topology()
        collapse(topology, memo=False)
        assert collapse_cache_stats()["entries"] == 0
        collapse(topology, memo=False)
        assert counter("collapse.memo_hits") == 0
        assert counter("collapse.recomputes") == 2

    def test_sources_restriction_keyed_separately(self, traced):
        """A restricted collapse must not satisfy an unrestricted one."""
        topology = small_topology()
        source = topology.container_names()[0]
        partial = collapse(topology, sources=[source])
        full = collapse(topology)
        assert full.pair_count() > partial.pair_count()
