"""Unit-string parsing and formatting."""

import pytest

from repro.units import (
    UnitError,
    format_rate,
    format_size,
    format_time,
    parse_rate,
    parse_size,
    parse_time,
)


class TestParseRate:
    def test_plain_number_defaults_to_bps(self):
        assert parse_rate(1000) == 1000.0

    def test_plain_number_with_default_unit(self):
        assert parse_rate(10, default_unit="Mbps") == 10e6

    @pytest.mark.parametrize("text,expected", [
        ("10Mbps", 10e6),
        ("10 Mbps", 10e6),
        ("128Kbps", 128e3),
        ("1Gbps", 1e9),
        ("50Mb/s", 50e6),
        ("2.5Gbps", 2.5e9),
        ("100bps", 100.0),
        ("4Tbps", 4e12),
    ])
    def test_strings(self, text, expected):
        assert parse_rate(text) == pytest.approx(expected)

    def test_case_insensitive(self):
        assert parse_rate("10MBPS") == parse_rate("10mbps") == 10e6

    def test_unknown_unit_raises(self):
        with pytest.raises(UnitError):
            parse_rate("10 parsecs")

    def test_garbage_raises(self):
        with pytest.raises(UnitError):
            parse_rate("fast")


class TestParseTime:
    @pytest.mark.parametrize("text,expected", [
        ("10ms", 0.010),
        ("1s", 1.0),
        ("500us", 500e-6),
        ("2min", 120.0),
        ("1h", 3600.0),
        ("250ns", 250e-9),
    ])
    def test_strings(self, text, expected):
        assert parse_time(text) == pytest.approx(expected)

    def test_bare_number_uses_default_unit(self):
        # Link latencies in the topology language are milliseconds.
        assert parse_time(10, default_unit="ms") == pytest.approx(0.010)
        assert parse_time("10", default_unit="ms") == pytest.approx(0.010)

    def test_bare_number_default_seconds(self):
        assert parse_time(120) == 120.0

    def test_unknown_unit_raises(self):
        with pytest.raises(UnitError):
            parse_time("10 fortnights")


class TestParseSize:
    def test_kilobytes_are_decimal_bytes(self):
        assert parse_size("64KB") == 64e3 * 8

    def test_kibibytes_are_binary(self):
        assert parse_size("64KiB") == 64 * 1024 * 8

    def test_bits_lowercase(self):
        assert parse_size("100kb") == 100e3

    def test_bare_number_is_bytes(self):
        assert parse_size(100) == 800.0

    def test_single_byte(self):
        assert parse_size("1B") == 8.0

    def test_unknown_raises(self):
        with pytest.raises(UnitError):
            parse_size("10XB")


class TestFormatting:
    def test_format_rate_picks_unit(self):
        assert format_rate(50e6) == "50Mbps"
        assert format_rate(1.5e9) == "1.5Gbps"
        assert format_rate(128e3) == "128Kbps"
        assert format_rate(10) == "10bps"

    def test_format_time_picks_unit(self):
        assert format_time(0.010) == "10ms"
        assert format_time(2.0) == "2s"
        assert format_time(5e-6) == "5us"

    def test_format_size_picks_unit(self):
        assert format_size(8 * 64e3) == "64KB"

    def test_round_trip(self):
        for value in (128e3, 50e6, 1e9, 2.5e9):
            assert parse_rate(format_rate(value)) == pytest.approx(value)
