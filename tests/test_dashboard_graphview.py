"""Tests for the dashboard's graph rendering and sparklines."""

import pytest

from repro.core import EmulationEngine, EngineConfig, collapse
from repro.dashboard import (
    Dashboard,
    render_adjacency,
    render_collapsed_matrix,
    render_flow_history,
    sparkline,
)
from repro.topogen import point_to_point_topology, star_topology


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_zero(self):
        assert sparkline([0.0, 0.0, 0.0]) == "▁▁▁"

    def test_monotone_ramp(self):
        strip = sparkline([1.0, 2.0, 3.0, 4.0])
        assert len(strip) == 4
        assert strip[-1] == "█"
        # Non-decreasing bar heights for a ramp.
        assert list(strip) == sorted(strip)

    def test_compresses_to_width(self):
        strip = sparkline(list(range(1000)), width=50)
        assert len(strip) == 50
        assert strip[-1] == "█"

    def test_peak_position(self):
        strip = sparkline([0.0, 10.0, 0.0])
        assert strip[1] == "█"
        assert strip[0] == "▁"


class TestAdjacency:
    def test_lists_nodes_and_links(self):
        text = render_adjacency(star_topology(["a", "b"], bandwidth=1e9))
        assert "[svc] a" in text
        assert "[brg] hub" in text
        assert "-> hub" in text
        assert "1Gbps" in text

    def test_isolated_node_marked(self):
        from repro.topology import Service, Topology
        topology = Topology("iso")
        topology.add_service(Service("lonely"))
        assert "(isolated)" in render_adjacency(topology)


class TestCollapsedMatrix:
    def test_symmetric_pair(self):
        collapsed = collapse(point_to_point_topology(10e6, latency=0.020))
        text = render_collapsed_matrix(collapsed)
        assert "client" in text and "server" in text
        assert "20ms/10Mbps" in text
        assert text.count("-") >= 2  # the diagonal

    def test_clipping(self):
        topology = star_topology([f"n{i}" for i in range(20)])
        text = render_collapsed_matrix(collapse(topology), limit=5)
        assert "clipped to the first 5" in text

    def test_source_filter(self):
        collapsed = collapse(point_to_point_topology(10e6))
        text = render_collapsed_matrix(collapsed, sources=["client"])
        assert text.count("client") >= 1
        # Only one row (client); server appears as a column… not a row.
        rows = [line for line in text.splitlines()
                if line.startswith("server")]
        assert not rows


class TestDashboardIntegration:
    def make_engine(self):
        engine = EmulationEngine(point_to_point_topology(50e6),
                                 config=EngineConfig(machines=2, seed=5))
        engine.start_flow("f", "client", "server")
        engine.run(until=2.0)
        return engine

    def test_render_graph(self):
        dashboard = Dashboard(self.make_engine())
        text = dashboard.render_graph()
        assert "adjacency" in text
        assert "collapsed end-to-end" in text

    def test_render_managers(self):
        dashboard = Dashboard(self.make_engine())
        text = dashboard.render_managers()
        assert "host-0" in text and "host-1" in text
        assert "loops=" in text

    def test_flow_history_sparkline(self):
        engine = self.make_engine()
        text = render_flow_history(engine.fluid, "f")
        assert text.startswith("f:")
        assert "peak=" in text

    def test_flow_histories_section(self):
        dashboard = Dashboard(self.make_engine())
        assert "f:" in dashboard.render_flow_histories()

    def test_flow_histories_empty(self):
        engine = EmulationEngine(point_to_point_topology(50e6),
                                 config=EngineConfig(seed=5))
        assert "(none)" in Dashboard(engine).render_flow_histories()

    def test_full_render_includes_managers(self):
        dashboard = Dashboard(self.make_engine())
        assert "emulation managers:" in dashboard.render()
