"""Tests for the fluid TCP model's shaper-interaction semantics.

These behaviours make the §3 congestion story work end-to-end:

* TSQ/ack-clocking: a shaper-limited window stops growing and never
  *crosses* the shaper limit, but an already-inflated window freezes
  rather than deflating (deflation needs loss);
* loss trains collapse into one multiplicative decrease per congestion
  event;
* back-pressure reporting fires on gross window inflation, not on the
  2-MSS minimum window or the normal TSQ equilibrium.
"""

import pytest

from repro.core import EmulationEngine, EngineConfig
from repro.netstack.fluid import FluidEngine, FluidFlow, GroundTruthConstraints
from repro.topogen import point_to_point_topology
from repro.topology import DynamicEvent, EventAction, EventSchedule

MBPS = 1e6


def advance_repeatedly(flow, achieved, *, steps, dt=0.01, lost=False,
                       start=0.0):
    now = start
    for _ in range(steps):
        flow.advance(now, dt, achieved, lost)
        now += dt
    return now


class TestWindowGrowth:
    def make_flow(self, rtt=0.02):
        flow = FluidFlow("f", "a", "b", congestion_control="reno")
        flow.rtt = rtt
        return flow

    def test_window_limited_flow_grows(self):
        flow = self.make_flow()
        before = flow.cwnd
        # Achieved == cwnd/rtt: the window is the binding constraint.
        flow.advance(0.0, 0.01, flow.cwnd / flow.rtt, False)
        assert flow.cwnd > before

    def test_shaper_limited_flow_freezes(self):
        flow = self.make_flow()
        flow.in_slow_start = False
        flow.cwnd = 10e6 * flow.rtt  # parked at a 10 Mb/s equivalent
        before = flow.cwnd
        # Achieved far below cwnd/rtt: shaping binds, window must freeze.
        advance_repeatedly(flow, achieved=1 * MBPS, steps=50)
        assert flow.cwnd == before

    def test_growth_never_crosses_shaper_limit(self):
        flow = self.make_flow()
        achieved = 5 * MBPS
        advance_repeatedly(flow, achieved, steps=2000)
        assert flow.cwnd <= achieved * flow.rtt / 0.85 + 1e-6

    def test_app_limited_flow_does_not_inflate(self):
        flow = FluidFlow("f", "a", "b", demand=1 * MBPS)
        flow.rtt = 0.02
        flow.cwnd = 10 * flow.demand * flow.rtt
        before = flow.cwnd
        advance_repeatedly(flow, achieved=1 * MBPS, steps=50)
        assert flow.cwnd == before


class TestBackoffEvents:
    def test_loss_train_is_one_event(self):
        flow = FluidFlow("f", "a", "b", congestion_control="cubic")
        flow.rtt = 0.002
        flow.cwnd = 1e6
        # 10 consecutive lossy steps within one reaction window.
        advance_repeatedly(flow, achieved=10 * MBPS, steps=4, lost=True)
        assert flow.loss_events == 1

    def test_separated_losses_are_separate_events(self):
        flow = FluidFlow("f", "a", "b", congestion_control="cubic")
        flow.rtt = 0.002
        flow.cwnd = 1e6
        flow.advance(0.0, 0.01, 10 * MBPS, True)
        flow.advance(0.5, 0.01, 10 * MBPS, True)
        assert flow.loss_events == 2


class TestPressureReporting:
    def run_engine(self, *, shrink_to=None, bandwidth=50 * MBPS,
                   latency=0.050, until=20.0):
        """A WAN-like path: a shrink leaves a window inflated by far more
        than the 16-MSS allowance, which is where §3's loss injection is
        needed (short-RTT windows are small enough for queues to absorb).
        """
        schedule = None
        if shrink_to is not None:
            schedule = EventSchedule([DynamicEvent(
                time=until / 2, action=EventAction.SET_LINK,
                origin="client", destination="s0",
                changes={"bandwidth": shrink_to})])
        engine = EmulationEngine(
            point_to_point_topology(bandwidth, latency=latency),
            schedule, config=EngineConfig(seed=4))
        flow = engine.start_flow("f", "client", "server")
        engine.run(until=until)
        return engine, flow

    def test_steady_flow_never_backs_off(self):
        _engine, flow = self.run_engine()
        assert flow.loss_events == 0

    def test_large_shrink_triggers_loss_and_converges(self):
        engine, flow = self.run_engine(shrink_to=5 * MBPS)
        assert flow.loss_events > 0
        assert engine.fluid.mean_throughput("f", 15.0, 20.0) == \
            pytest.approx(5 * MBPS, rel=0.15)

    def test_min_window_does_not_deadlock(self):
        # After convergence the loss injection must clear: the flow's
        # 2-MSS minimum window over a short RTT is not oversubscription.
        engine, _flow = self.run_engine(shrink_to=5 * MBPS)
        shaping = engine.tcals["client"].shaping_for("server")
        assert shaping.netem.loss < 0.01

    def test_udp_keeps_pushing_and_gets_loss(self):
        # §3: UDP "simply continues to send packets at the application
        # sending rate" — an oversubscribing UDP flow keeps its rate and
        # the emulation answers with sustained packet loss.
        schedule = EventSchedule([DynamicEvent(
            time=6.0, action=EventAction.SET_LINK, origin="client",
            destination="s0", changes={"bandwidth": 5 * MBPS})])
        engine = EmulationEngine(point_to_point_topology(50 * MBPS),
                                 schedule, config=EngineConfig(seed=4))
        engine.start_flow("u", "client", "server", protocol="udp",
                          demand=40 * MBPS)
        engine.run(until=12.0)
        shaping = engine.tcals["client"].shaping_for("server")
        # The UDP sender never backs off, so loss stays injected.
        assert shaping.netem.loss > 0.3
        delivered = engine.fluid.mean_throughput("u", 10.0, 12.0)
        assert delivered <= 5 * MBPS * 1.05


class TestTcalRefusedAccounting:
    def make_plane(self):
        from repro.netstack.kollapsnet import KollapsDataPlane
        from repro.sim import Simulator
        from repro.tc.ip import IpAllocator
        from repro.tc.tcal import Tcal

        sim = Simulator()
        allocator = IpAllocator()
        allocator.assign("a")
        allocator.assign("b")
        tcal = Tcal("a", allocator)
        tcal.install_destination("b", latency=0.0, jitter=0.0, loss=0.0,
                                 bandwidth=1e6)
        plane = KollapsDataPlane(sim)
        plane.attach_tcal("a", tcal)
        return sim, plane, tcal

    def flood(self, sim, plane, *, abandon: bool, count: int = 400):
        from repro.netstack.packet import Packet

        kwargs = {}
        if abandon:
            kwargs["on_backpressure"] = lambda packet, retry_at: None
        for _ in range(count):
            plane.send(Packet("a", "b", 1500 * 8.0), lambda p: None,
                       **kwargs)

    def test_abandoned_backpressure_counts_as_refused(self):
        sim, plane, tcal = self.make_plane()
        self.flood(sim, plane, abandon=True)
        refused = tcal.poll_refused()["b"]
        assert refused > 0
        # Reset on poll.
        assert tcal.poll_refused()["b"] == 0.0

    def test_blocking_backpressure_is_not_refused(self):
        # Blocking senders' packets queue and are carried later: counting
        # them as refused would double a flow-controlled stream's demand.
        sim, plane, tcal = self.make_plane()
        self.flood(sim, plane, abandon=False)
        assert tcal.poll_refused()["b"] == 0.0
        assert plane.backpressure_events > 0
