"""Tests for the rtnetlink wire format and the kernel dispatcher."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.tc.ip import IpAllocator
from repro.tc.netlink import (
    Attribute,
    KernelTcDispatcher,
    NLMSG_DONE,
    NLMSG_ERROR,
    NetlinkError,
    NetlinkMessage,
    RTM_GETTCLASS,
    RTM_NEWQDISC,
    RTM_NEWTCLASS,
    decode_message,
    decode_stats_reply,
    encode_message,
    get_stats_request,
    new_netem_request,
    new_tclass_request,
)
from repro.tc.tcal import Tcal


def make_tcal() -> Tcal:
    allocator = IpAllocator()
    for name in ("a", "b", "c"):
        allocator.assign(name)
    tcal = Tcal("a", allocator)
    tcal.install_destination("b", latency=0.010, jitter=0.0, loss=0.0,
                             bandwidth=10e6)
    tcal.install_destination("c", latency=0.020, jitter=0.001, loss=0.01,
                             bandwidth=50e6)
    return tcal


class TestWireFormat:
    def test_roundtrip_simple(self):
        message = NetlinkMessage(kind=RTM_NEWTCLASS, sequence=7,
                                 handle=0x10001, parent=0xFFFF,
                                 attributes=[Attribute.u64(2, 123456789),
                                             Attribute.string(7, "server")])
        decoded = decode_message(encode_message(message))
        assert decoded.kind == RTM_NEWTCLASS
        assert decoded.sequence == 7
        assert decoded.handle == 0x10001
        assert decoded.parent == 0xFFFF
        assert decoded.attribute(2).as_u64() == 123456789
        assert decoded.attribute(7).as_string() == "server"

    def test_attributes_are_4_byte_aligned(self):
        # A 1-byte value forces 3 bytes of padding before the next TLV.
        frame = encode_message(NetlinkMessage(
            kind=NLMSG_DONE, sequence=0,
            attributes=[Attribute(1, b"x"), Attribute(2, b"yyyy")]))
        decoded = decode_message(frame)
        assert decoded.attribute(1).value == b"x"
        assert decoded.attribute(2).value == b"yyyy"
        assert len(frame) % 4 == 0

    def test_nested_attributes(self):
        nested = Attribute.nested(8, [Attribute.u32(1, 5),
                                      Attribute.string(2, "inner")])
        decoded = decode_message(encode_message(NetlinkMessage(
            kind=NLMSG_DONE, sequence=0, attributes=[nested])))
        inner = decoded.attribute(8).as_nested()
        assert inner[0].as_u32() == 5
        assert inner[1].as_string() == "inner"

    def test_length_field_must_match(self):
        frame = encode_message(NetlinkMessage(kind=NLMSG_DONE, sequence=0))
        with pytest.raises(NetlinkError, match="length"):
            decode_message(frame + b"\x00")

    def test_truncated_frame_rejected(self):
        with pytest.raises(NetlinkError):
            decode_message(b"\x01\x02")

    def test_bad_attribute_length_rejected(self):
        message = NetlinkMessage(kind=NLMSG_DONE, sequence=0)
        frame = bytearray(encode_message(message))
        # Append a corrupt attribute claiming 60000 bytes.
        frame[:4] = struct.pack("<I", len(frame) + 4)
        frame += struct.pack("<HH", 60000, 1)
        with pytest.raises(NetlinkError, match="length"):
            decode_message(bytes(frame))

    def test_wrong_scalar_width_rejected(self):
        attribute = Attribute(1, b"\x01\x02")
        with pytest.raises(NetlinkError):
            attribute.as_u32()
        with pytest.raises(NetlinkError):
            attribute.as_u64()

    @given(st.lists(st.tuples(st.integers(1, 100),
                              st.binary(max_size=40)), max_size=8),
           st.integers(0, 2 ** 31 - 1))
    def test_roundtrip_property(self, raw_attributes, sequence):
        attributes = [Attribute(kind, value)
                      for kind, value in raw_attributes]
        message = NetlinkMessage(kind=NLMSG_DONE, sequence=sequence,
                                 attributes=attributes)
        decoded = decode_message(encode_message(message))
        assert decoded.sequence == sequence
        assert [(a.kind, a.value) for a in decoded.attributes] == \
            [(a.kind, a.value) for a in attributes]


class TestDispatcher:
    def test_set_rate(self):
        tcal = make_tcal()
        dispatcher = KernelTcDispatcher(tcal)
        reply = dispatcher.handle(new_tclass_request(1, "b", 25e6))
        assert decode_message(reply).kind == NLMSG_DONE
        assert tcal.shaping_for("b").htb.rate == 25e6

    def test_set_netem(self):
        tcal = make_tcal()
        dispatcher = KernelTcDispatcher(tcal)
        reply = dispatcher.handle(new_netem_request(
            2, "c", latency=0.050, jitter=0.002, loss=0.05))
        assert decode_message(reply).kind == NLMSG_DONE
        netem = tcal.shaping_for("c").netem
        assert netem.latency == pytest.approx(0.050)
        assert netem.jitter == pytest.approx(0.002)
        assert netem.loss == pytest.approx(0.05, abs=1e-6)

    def test_partial_netem_update(self):
        tcal = make_tcal()
        dispatcher = KernelTcDispatcher(tcal)
        dispatcher.handle(new_netem_request(3, "c", loss=0.2))
        netem = tcal.shaping_for("c").netem
        assert netem.loss == pytest.approx(0.2, abs=1e-6)
        assert netem.latency == pytest.approx(0.020)  # untouched

    def test_stats_roundtrip(self):
        tcal = make_tcal()
        dispatcher = KernelTcDispatcher(tcal)
        tcal.shaping_for("b").record(8_000)
        tcal.shaping_for("c").record(16_000)
        usage = decode_stats_reply(dispatcher.handle(get_stats_request(4)))
        assert usage["b"] == pytest.approx(8_000)
        assert usage["c"] == pytest.approx(16_000)
        # The poll reset the counters.
        usage = decode_stats_reply(dispatcher.handle(get_stats_request(5)))
        assert usage["b"] == 0.0

    def test_unknown_destination_returns_error(self):
        dispatcher = KernelTcDispatcher(make_tcal())
        reply = decode_message(
            dispatcher.handle(new_tclass_request(6, "ghost", 1e6)))
        assert reply.kind == NLMSG_ERROR
        assert reply.sequence == 6

    def test_garbage_frame_returns_error(self):
        dispatcher = KernelTcDispatcher(make_tcal())
        reply = decode_message(dispatcher.handle(b"garbage"))
        assert reply.kind == NLMSG_ERROR

    def test_unsupported_type_returns_error(self):
        dispatcher = KernelTcDispatcher(make_tcal())
        frame = encode_message(NetlinkMessage(kind=99, sequence=9))
        reply = decode_message(dispatcher.handle(frame))
        assert reply.kind == NLMSG_ERROR

    def test_loss_out_of_range_rejected_at_build_time(self):
        with pytest.raises(NetlinkError):
            new_netem_request(1, "b", loss=1.5)

    def test_request_counter(self):
        dispatcher = KernelTcDispatcher(make_tcal())
        dispatcher.handle(get_stats_request(1))
        dispatcher.handle(new_tclass_request(2, "b", 1e6))
        dispatcher.handle(b"junk")  # errors do not count as served
        assert dispatcher.requests_served == 2
