"""The PR-1 deprecation shims: they must warn AND stay byte-identical.

``repro.topology.parse_*`` and ``repro.topogen.*_topology`` are thin
wrappers over the unified Scenario API; each must emit a
``DeprecationWarning`` naming its replacement while returning output
identical to the front-end it wraps.
"""

import warnings

import pytest

from repro.scenario import Scenario
from repro.scenario import topologies as scenario_topologies

TEXT = """
experiment:
  services:
    name: c1
    image: "iperf"
    name: sv
    image: "nginx"
    replicas: 2
  bridges:
    name: s1
  links:
    orig: c1
    dest: s1
    latency: 10
    up: 10Mbps
    down: 10Mbps
    orig: sv
    dest: s1
    latency: 5
    up: 50Mbps
    down: 50Mbps
"""

XML = """
<topology name="demo">
  <vertices>
    <vertex name="c1" role="virtnode" image="iperf"/>
    <vertex name="sv" role="virtnode" image="nginx" replicas="2"/>
    <vertex name="s1" role="gateway"/>
  </vertices>
  <edges>
    <edge src="c1" dst="s1" latency="10" bw="10Mbps"/>
    <edge src="sv" dst="s1" latency="5" bw="50Mbps"/>
  </edges>
</topology>
"""


def path_table(topology):
    return Scenario.from_topology(topology).compile().path_table()


def assert_warns_deprecation(callable_, match: str):
    with pytest.warns(DeprecationWarning, match=match):
        return callable_()


class TestParserShims:
    def test_parse_experiment_text_warns_and_matches(self):
        from repro.topology import parse_experiment_text
        topology, schedule = assert_warns_deprecation(
            lambda: parse_experiment_text(TEXT), "Scenario.from_text")
        compiled = Scenario.from_text(TEXT).compile()
        assert path_table(topology) == compiled.path_table()
        assert len(schedule) == len(compiled.schedule)

    def test_parse_experiment_dict_warns_and_matches(self):
        from repro.topology import parse_experiment
        description = {"experiment": {
            "services": [{"name": "a", "image": "x"},
                         {"name": "b", "image": "x"}],
            "links": [{"orig": "a", "dest": "b", "latency": 0.01,
                       "up": "10Mbps", "down": "10Mbps"}]}}
        topology, _schedule = assert_warns_deprecation(
            lambda: parse_experiment(description), "Scenario.from_dict")
        compiled = Scenario.from_dict(description).compile()
        assert path_table(topology) == compiled.path_table()

    def test_parse_modelnet_xml_warns_and_matches(self):
        from repro.topology import parse_modelnet_xml
        topology, _schedule = assert_warns_deprecation(
            lambda: parse_modelnet_xml(XML), "Scenario.from_xml")
        compiled = Scenario.from_xml(XML).compile()
        assert path_table(topology) == compiled.path_table()


# (shim callable, scenario-front-end callable, replacement named in warning)
TOPOGEN_CASES = {
    "point_to_point_topology": (
        lambda m: m.point_to_point_topology(10e6, latency=0.002),
        lambda: scenario_topologies.point_to_point(10e6, latency=0.002),
        "point_to_point"),
    "dumbbell_topology": (
        lambda m: m.dumbbell_topology(3),
        lambda: scenario_topologies.dumbbell(3),
        "dumbbell"),
    "star_topology": (
        lambda m: m.star_topology(["a", "b", "c"]),
        lambda: scenario_topologies.star(["a", "b", "c"]),
        "star"),
    "tree_topology": (
        lambda m: m.tree_topology(2, 2),
        lambda: scenario_topologies.tree(2, 2),
        "tree"),
    "scale_free_topology": (
        lambda m: m.scale_free_topology(40, seed=5),
        lambda: scenario_topologies.scale_free(40, seed=5),
        "scale_free"),
    "aws_star_topology": (
        lambda m: m.aws_star_topology(),
        lambda: scenario_topologies.aws_star(),
        "aws_star"),
    "aws_mesh_topology": (
        lambda m: m.aws_mesh_topology(["frankfurt", "sydney"], 2),
        lambda: scenario_topologies.aws_mesh(["frankfurt", "sydney"], 2),
        "aws_mesh"),
    "throttling_topology": (
        lambda m: m.throttling_topology(),
        lambda: scenario_topologies.throttling(),
        "throttling"),
    "fat_tree_topology": (
        lambda m: m.fat_tree_topology(2),
        lambda: scenario_topologies.fat_tree(2),
        "fat_tree"),
    "jellyfish_topology": (
        lambda m: m.jellyfish_topology(6, 3, seed=2),
        lambda: scenario_topologies.jellyfish(6, 3, seed=2),
        "jellyfish"),
}


class TestTopogenShims:
    @pytest.mark.parametrize("name", sorted(TOPOGEN_CASES))
    def test_shim_warns_and_names_replacement(self, name):
        import repro.topogen as topogen
        shim, _front_end, replacement = TOPOGEN_CASES[name]
        with pytest.warns(DeprecationWarning) as record:
            shim(topogen)
        messages = [str(w.message) for w in record]
        assert any(name in message and f"{replacement}()" in message
                   for message in messages), messages

    @pytest.mark.parametrize("name", sorted(TOPOGEN_CASES))
    def test_shim_output_identical_to_scenario_front_end(self, name):
        import repro.topogen as topogen
        shim, front_end, _replacement = TOPOGEN_CASES[name]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = shim(topogen)
        assert path_table(legacy) == front_end().compile().path_table()

    def test_scenario_front_ends_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            scenario_topologies.star(["a", "b"]).compile()
            Scenario.from_text(TEXT).compile()
