"""Traffic-control substrate: htb, netem, u32 and the TCAL facade."""

import random
import statistics

import pytest

from repro.tc import IpAllocator, Ipv4Address, NetemQdisc, Tcal, U32Filter
from repro.tc.htb import BackPressure, HtbClass


class TestIpv4:
    def test_parse_and_str_round_trip(self):
        address = Ipv4Address.parse("10.1.3.7")
        assert str(address) == "10.1.3.7"
        assert address.octets == (10, 1, 3, 7)

    def test_third_and_fourth_octets(self):
        address = Ipv4Address.parse("10.1.200.45")
        assert address.third_octet == 200
        assert address.fourth_octet == 45

    def test_octet_out_of_range(self):
        with pytest.raises(ValueError):
            Ipv4Address.from_octets(10, 1, 300, 1)

    def test_allocator_sequential_within_slash16(self):
        allocator = IpAllocator("10.1.0.0")
        first = allocator.assign("a")
        second = allocator.assign("b")
        assert str(first) == "10.1.0.1"
        assert str(second) == "10.1.0.2"

    def test_allocator_idempotent(self):
        allocator = IpAllocator()
        assert allocator.assign("a") == allocator.assign("a")
        assert len(allocator) == 1

    def test_reverse_lookup(self):
        allocator = IpAllocator()
        address = allocator.assign("svc.0")
        assert allocator.reverse(address) == "svc.0"

    def test_lookup_unassigned_raises(self):
        with pytest.raises(KeyError):
            IpAllocator().lookup("ghost")


class TestU32Filter:
    def test_classify_after_add(self):
        filter_ = U32Filter()
        filter_.add_match(Ipv4Address.parse("10.1.2.3"), class_id=7)
        assert filter_.classify(Ipv4Address.parse("10.1.2.3")) == 7

    def test_no_rule_returns_none(self):
        assert U32Filter().classify(Ipv4Address.parse("10.1.2.3")) is None

    def test_same_third_octet_no_collision(self):
        """The two-level table distinguishes .x.1 from .x.2 (no collisions)."""
        filter_ = U32Filter()
        filter_.add_match(Ipv4Address.parse("10.1.5.1"), 1)
        filter_.add_match(Ipv4Address.parse("10.1.5.2"), 2)
        assert filter_.classify(Ipv4Address.parse("10.1.5.1")) == 1
        assert filter_.classify(Ipv4Address.parse("10.1.5.2")) == 2

    def test_remove_match(self):
        filter_ = U32Filter()
        address = Ipv4Address.parse("10.1.0.9")
        filter_.add_match(address, 3)
        filter_.remove_match(address)
        assert filter_.classify(address) is None
        with pytest.raises(KeyError):
            filter_.remove_match(address)

    def test_rule_count(self):
        filter_ = U32Filter()
        filter_.add_match(Ipv4Address.parse("10.1.0.1"), 1)
        filter_.add_match(Ipv4Address.parse("10.1.0.2"), 2)
        filter_.add_match(Ipv4Address.parse("10.1.0.1"), 9)  # replace
        assert filter_.rules == 2


class TestHtb:
    def test_rate_paces_long_run_throughput(self):
        """Sending 100 x 10 kbit packets at 1 Mb/s takes ~1 s."""
        htb = HtbClass(rate=1e6, burst=0.0, queue_bits=1e9)
        finish = 0.0
        for _ in range(100):
            finish = htb.enqueue(0.0, 10e3)
        assert finish == pytest.approx(1.0, rel=1e-6)

    def test_idle_burst_releases_immediately(self):
        htb = HtbClass(rate=1e6)
        first = htb.enqueue(10.0, 1500 * 8)
        assert first == pytest.approx(10.0 + 1500 * 8 / 1e6)

    def test_backpressure_not_drop_when_full(self):
        """Paper §3: a full htb queue back-pressures instead of dropping."""
        htb = HtbClass(rate=1e6, queue_bits=20e3)
        htb.enqueue(0.0, 10e3)
        htb.enqueue(0.0, 10e3)
        with pytest.raises(BackPressure) as info:
            htb.enqueue(0.0, 10e3)
        assert info.value.retry_at > 0.0
        assert htb.backpressure_events == 1

    def test_backlog_drains_over_time(self):
        htb = HtbClass(rate=1e6, queue_bits=20e3)
        htb.enqueue(0.0, 10e3)
        htb.enqueue(0.0, 10e3)
        assert htb.backlog_bits(0.0) == pytest.approx(20e3)
        assert htb.backlog_bits(0.01) == pytest.approx(10e3)
        # After draining, the queue admits packets again.
        htb.enqueue(0.02, 10e3)

    def test_set_rate_applies_to_new_packets(self):
        htb = HtbClass(rate=1e6, burst=0.0, queue_bits=1e9)
        htb.enqueue(0.0, 1e6)  # occupies the wire until t=1.0
        htb.set_rate(2e6)
        finish = htb.enqueue(0.0, 1e6)
        assert finish == pytest.approx(1.5)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            HtbClass(rate=1e6).set_rate(0.0)

    def test_counters(self):
        htb = HtbClass(rate=1e9)
        htb.enqueue(0.0, 8000)
        htb.enqueue(0.0, 8000)
        assert htb.bits_sent == 16000
        assert htb.packets_sent == 2
        htb.reset_counters()
        assert htb.bits_sent == 0


class TestNetem:
    def test_no_jitter_constant_delay(self):
        netem = NetemQdisc(latency=0.010)
        assert netem.sample_delay() == 0.010

    def test_normal_jitter_statistics(self):
        rng = random.Random(1)
        netem = NetemQdisc(latency=0.100, jitter=0.005, rng=rng)
        samples = [netem.sample_delay() for _ in range(4000)]
        assert statistics.mean(samples) == pytest.approx(0.100, abs=0.001)
        assert statistics.stdev(samples) == pytest.approx(0.005, rel=0.10)

    def test_uniform_jitter_statistics(self):
        rng = random.Random(2)
        netem = NetemQdisc(latency=0.100, jitter=0.005, rng=rng,
                           distribution="uniform")
        samples = [netem.sample_delay() for _ in range(4000)]
        assert statistics.stdev(samples) == pytest.approx(0.005, rel=0.10)
        assert max(samples) <= 0.100 + 0.005 * (3 ** 0.5) + 1e-9

    def test_delay_never_below_latency_floor(self):
        rng = random.Random(3)
        netem = NetemQdisc(latency=0.010, jitter=0.050, rng=rng)
        assert min(netem.sample_delay() for _ in range(2000)) >= 0.005

    def test_loss_rate(self):
        rng = random.Random(4)
        netem = NetemQdisc(loss=0.3, rng=rng)
        outcomes = [netem.process() for _ in range(5000)]
        dropped = sum(1 for outcome in outcomes if outcome is None)
        assert dropped / 5000 == pytest.approx(0.3, abs=0.02)
        assert netem.packets_dropped == dropped

    def test_configure_partial_update(self):
        netem = NetemQdisc(latency=0.010, jitter=0.001)
        netem.configure(loss=0.05)
        assert netem.latency == 0.010
        assert netem.loss == 0.05

    def test_configure_rejects_bad_loss(self):
        with pytest.raises(ValueError):
            NetemQdisc().configure(loss=1.5)


class TestTcal:
    def build(self):
        allocator = IpAllocator()
        allocator.assign("client")
        allocator.assign("server")
        tcal = Tcal("client", allocator, rng=random.Random(7))
        tcal.install_destination("server", latency=0.010, jitter=0.0,
                                 loss=0.0, bandwidth=1e6)
        return tcal

    def test_egress_applies_latency_and_pacing(self):
        tcal = self.build()
        release = tcal.egress(0.0, "server", 8000)
        assert release == pytest.approx(0.010 + 8000 / 1e6)

    def test_netem_loss_drops(self):
        tcal = self.build()
        tcal.set_netem("server", loss=1.0)
        assert tcal.egress(0.0, "server", 8000) is None

    def test_poll_usage_reports_and_resets(self):
        tcal = self.build()
        tcal.egress(0.0, "server", 8000)
        tcal.egress(0.0, "server", 8000)
        assert tcal.poll_usage() == {"server": 16000}
        assert tcal.poll_usage() == {"server": 0.0}

    def test_set_bandwidth_changes_pacing(self):
        tcal = self.build()
        tcal.set_bandwidth("server", 2e6)
        release = tcal.egress(0.0, "server", 8000)
        assert release == pytest.approx(0.010 + 8000 / 2e6)

    def test_classify_via_u32(self):
        tcal = self.build()
        address = tcal.allocator.lookup("server")
        assert tcal.classify(address) is not None

    def test_install_is_idempotent_reconfigure(self):
        tcal = self.build()
        shaping_before = tcal.shaping_for("server")
        tcal.install_destination("server", latency=0.020, jitter=0.0,
                                 loss=0.0, bandwidth=5e6)
        assert tcal.shaping_for("server") is shaping_before
        assert shaping_before.netem.latency == 0.020
        assert shaping_before.htb.rate == 5e6

    def test_remove_destination(self):
        tcal = self.build()
        tcal.remove_destination("server")
        with pytest.raises(KeyError):
            tcal.shaping_for("server")

    def test_unknown_destination_raises(self):
        tcal = self.build()
        with pytest.raises(KeyError):
            tcal.egress(0.0, "ghost", 8000)

    def test_netlink_call_accounting(self):
        tcal = self.build()
        calls_before = tcal.netlink_calls
        tcal.set_bandwidth("server", 2e6)
        tcal.poll_usage()
        assert tcal.netlink_calls == calls_before + 2
