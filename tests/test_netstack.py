"""Packet links, full-state network, Kollaps plane and the short-flow model."""

import pytest

from repro.netstack import (
    FullStateNetwork,
    KollapsDataPlane,
    Packet,
    PacketLink,
    short_flow_transfer_time,
)
from repro.netstack.fullnet import SwitchModel
from repro.netstack.shortflow import slow_start_rounds
from repro.sim import RngRegistry, Simulator
from repro.tc.ip import IpAllocator
from repro.tc.tcal import Tcal
from repro.topology import Bridge, LinkProperties, Service, Topology
from repro.topogen import point_to_point_topology


class TestPacketLink:
    def test_delivery_after_serialization_and_propagation(self):
        sim = Simulator()
        link = PacketLink(sim, LinkProperties(latency=0.010, bandwidth=1e6))
        arrivals = []
        link.transmit(Packet("a", "b", 8000), lambda p: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [pytest.approx(0.010 + 8000 / 1e6)]

    def test_fifo_serialization_queues_consecutive_packets(self):
        sim = Simulator()
        link = PacketLink(sim, LinkProperties(latency=0.0, bandwidth=1e6))
        arrivals = []
        for _ in range(3):
            link.transmit(Packet("a", "b", 10e3),
                          lambda p: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [pytest.approx(0.01), pytest.approx(0.02),
                            pytest.approx(0.03)]

    def test_buffer_overflow_tail_drops(self):
        sim = Simulator()
        link = PacketLink(sim, LinkProperties(bandwidth=1e6),
                          buffer_bits=15e3)
        outcomes = [link.transmit(Packet("a", "b", 10e3), lambda p: None)
                    for _ in range(3)]
        assert outcomes == [True, False, False]
        assert link.packets_dropped == 2

    def test_random_loss(self):
        sim = Simulator()
        rng = RngRegistry(5).stream("loss")
        link = PacketLink(sim, LinkProperties(bandwidth=1e9, loss=0.5),
                          rng=rng)
        sent = sum(link.transmit(Packet("a", "b", 800), lambda p: None)
                   for _ in range(2000))
        assert 850 < sent < 1150

    def test_infinite_bandwidth_is_pure_delay(self):
        sim = Simulator()
        link = PacketLink(sim, LinkProperties(latency=0.005))
        arrivals = []
        link.transmit(Packet("a", "b", 1e9), lambda p: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [pytest.approx(0.005)]


class TestFullStateNetwork:
    def test_end_to_end_delivery_latency(self):
        sim = Simulator()
        topology = point_to_point_topology(1e9, latency=0.020)
        network = FullStateNetwork(sim, topology)
        arrivals = []
        network.send(Packet("client", "server", 8000, created=sim.now),
                     lambda p: arrivals.append(sim.now))
        sim.run()
        assert len(arrivals) == 1
        # Two hops of 10 ms plus two serializations of 8 us.
        assert arrivals[0] == pytest.approx(0.020 + 2 * 8000 / 1e9)

    def test_unreachable_destination_dropped(self):
        sim = Simulator()
        topology = Topology()
        topology.add_service(Service("a"))
        topology.add_service(Service("b"))
        topology.add_bridge(Bridge("s"))
        topology.add_link("a", "s", LinkProperties())
        network = FullStateNetwork(sim, topology)
        drops = []
        network.send(Packet("a", "b", 800), lambda p: None,
                     on_drop=lambda p: drops.append(p))
        sim.run()
        assert len(drops) == 1
        assert not network.reachable("a", "b")

    def test_switch_overhead_adds_delay(self):
        def run(with_switch_model):
            sim = Simulator()
            topology = point_to_point_topology(1e9, latency=0.010)
            factory = (lambda name: SwitchModel(forward_delay=0.002)) \
                if with_switch_model else None
            network = FullStateNetwork(sim, topology,
                                       switch_model_factory=factory)
            arrivals = []
            network.send(Packet("client", "server", 800),
                         lambda p: arrivals.append(sim.now))
            sim.run()
            return arrivals[0]

        assert run(True) - run(False) == pytest.approx(0.002)

    def test_connection_setup_cost_paid_once_per_connection(self):
        switch = SwitchModel(connection_setup_cost=0.001)
        first = switch.processing_delay(0.0, ("a", "b", "conn1"))
        repeat = switch.processing_delay(0.0, ("a", "b", "conn1"))
        assert first >= 0.001
        assert repeat < first
        assert switch.setups == 1

    def test_setups_queue_on_the_shared_cpu(self):
        switch = SwitchModel(connection_setup_cost=0.001)
        first = switch.processing_delay(0.0, ("a", "b", "conn1"))
        second = switch.processing_delay(0.0, ("a", "b", "conn2"))
        # The second setup waits behind the first on the switch CPU.
        assert second == pytest.approx(first + 0.001)

    def test_install_topology_reroutes(self):
        sim = Simulator()
        topology = point_to_point_topology(1e9, latency=0.010)
        network = FullStateNetwork(sim, topology)
        changed = topology.copy()
        changed.update_link("client", "s0", latency=0.050)
        changed.update_link("s0", "client", latency=0.050)
        network.install_topology(changed)
        arrivals = []
        network.send(Packet("client", "server", 800),
                     lambda p: arrivals.append(sim.now))
        sim.run()
        assert arrivals[0] == pytest.approx(0.055, rel=1e-3)


class TestKollapsDataPlane:
    def build(self, machines=("m0", "m0")):
        sim = Simulator()
        allocator = IpAllocator()
        allocator.assign("a")
        allocator.assign("b")
        plane = KollapsDataPlane(
            sim, placement={"a": machines[0], "b": machines[1]},
            container_network_delay=10e-6, physical_network_delay=90e-6)
        for name, peer in (("a", "b"), ("b", "a")):
            tcal = Tcal(name, allocator)
            tcal.install_destination(peer, latency=0.010, jitter=0.0,
                                     loss=0.0, bandwidth=1e9)
            plane.attach_tcal(name, tcal)
        return sim, plane

    def test_same_machine_delivery(self):
        sim, plane = self.build()
        arrivals = []
        plane.send(Packet("a", "b", 8000), lambda p: arrivals.append(sim.now))
        sim.run()
        assert arrivals[0] == pytest.approx(0.010 + 8000 / 1e9 + 10e-6)

    def test_cross_machine_adds_physical_delay(self):
        sim, plane = self.build(machines=("m0", "m1"))
        arrivals = []
        plane.send(Packet("a", "b", 8000), lambda p: arrivals.append(sim.now))
        sim.run()
        assert arrivals[0] == pytest.approx(0.010 + 8000 / 1e9 + 100e-6)

    def test_netem_loss_invokes_on_drop(self):
        sim, plane = self.build()
        plane.tcal_for("a").set_netem("b", loss=1.0)
        drops = []
        plane.send(Packet("a", "b", 800), lambda p: None,
                   on_drop=lambda p: drops.append(p))
        sim.run()
        assert len(drops) == 1
        assert plane.packets_dropped == 1

    def test_backpressure_retries_by_default(self):
        sim, plane = self.build()
        tcal = plane.tcal_for("a")
        tcal.set_bandwidth("b", 1e4)  # tiny rate so the queue fills
        shaping = tcal.shaping_for("b")
        shaping.htb.queue_bits = 1000.0
        arrivals = []
        for _ in range(3):
            plane.send(Packet("a", "b", 800),
                       lambda p: arrivals.append(sim.now))
        sim.run()
        assert len(arrivals) == 3  # all delivered eventually
        assert plane.backpressure_events >= 1

    def test_unknown_destination_dropped(self):
        sim, plane = self.build()
        drops = []
        plane.send(Packet("a", "ghost", 800), lambda p: None,
                   on_drop=lambda p: drops.append(p))
        assert len(drops) == 1

    def test_reachable(self):
        _, plane = self.build()
        assert plane.reachable("a", "b")
        assert not plane.reachable("a", "ghost")


class TestShortFlowModel:
    def test_zero_size_costs_handshake_only(self):
        assert short_flow_transfer_time(0, rtt=0.010, bandwidth=1e9) == \
            pytest.approx(0.015)

    def test_small_transfer_dominated_by_rtt(self):
        # 64 KB at 100 Mb/s: serialization is ~5 ms but slow start adds RTTs.
        time_fast_link = short_flow_transfer_time(64e3 * 8, rtt=0.010,
                                                  bandwidth=100e6)
        time_slow_rtt = short_flow_transfer_time(64e3 * 8, rtt=0.050,
                                                 bandwidth=100e6)
        assert time_slow_rtt > time_fast_link * 3

    def test_large_transfer_approaches_line_rate(self):
        size = 1e9  # 125 MB
        elapsed = short_flow_transfer_time(size, rtt=0.010, bandwidth=100e6)
        assert elapsed == pytest.approx(size / 100e6, rel=0.1)

    def test_slow_start_rounds_double(self):
        # 10 * 1448B ~ 115 kbit initial window; 1 Mbit payload on a fat pipe.
        rounds = slow_start_rounds(1e6, rtt=0.010, bandwidth=10e9)
        assert rounds == 4  # 115k + 230k + 460k + 920k > 1M

    def test_monotone_in_size(self):
        times = [short_flow_transfer_time(size, rtt=0.02, bandwidth=50e6)
                 for size in (1e4, 1e5, 1e6, 1e7)]
        assert times == sorted(times)
