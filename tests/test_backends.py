"""Pluggable execution backends: registry, lifecycle, capabilities,
determinism and the unified results API."""

import pytest

from repro.scenario import (
    BackendCompatibilityError,
    ExecutionBackend,
    KollapsBackend,
    Scenario,
    backend_names,
    custom,
    flow,
    iperf,
    ping,
    register_backend,
    resolve_backend,
    set_link,
)
from repro.scenario.results import Metrics, ScenarioRun
from repro.scenario.topologies import point_to_point, star

MBPS = 1e6

ALL_BACKENDS = ("kollaps", "baremetal", "mininet", "maxinet", "trickle")


def bulk_scenario(seed: int = 7):
    """A point-to-point iperf scenario every backend can execute."""
    return (point_to_point(50 * MBPS, latency=0.001)
            .workload(iperf("client", "server", duration=4.0, warmup=1.0,
                            key="i"))
            .deploy(machines=2, seed=seed, duration=4.0)
            .compile())


def probing_scenario(seed: int = 7):
    """iperf + ping: needs both planes (everything but trickle)."""
    return (star(["server", "c1", "c2"], bandwidth=100 * MBPS,
                 latency=0.001)
            .workload(iperf("c1", "server", duration=4.0, warmup=1.0,
                            key="i"),
                      ping("c2", "server", count=10, interval=0.05))
            .deploy(machines=2, seed=seed, duration=4.0)
            .compile())


class TestRegistry:
    def test_all_paper_systems_registered(self):
        for name in ALL_BACKENDS:
            assert name in backend_names()

    def test_unknown_backend_lists_known_names(self):
        with pytest.raises(ValueError) as error:
            bulk_scenario().run(backend="ns3")
        message = str(error.value)
        assert "ns3" in message
        for name in ALL_BACKENDS:
            assert name in message

    def test_options_rejected_on_ready_instances(self):
        with pytest.raises(TypeError):
            resolve_backend(KollapsBackend(), workers=4)

    def test_non_backend_object_rejected(self):
        with pytest.raises(TypeError) as error:
            resolve_backend(object())
        assert "lifecycle" in str(error.value)

    def test_custom_backend_registers_and_runs(self):
        class TaggedKollaps(KollapsBackend):
            name = "kollaps-tagged"

        register_backend("kollaps-tagged", TaggedKollaps)
        try:
            run = bulk_scenario().run(backend="kollaps-tagged")
            assert run.backend == "kollaps-tagged"
            assert run.engine.scenario_backend == "kollaps-tagged"
        finally:
            from repro.scenario import backends as backends_module
            del backends_module._REGISTRY["kollaps-tagged"]

    def test_ready_instance_accepted_directly(self):
        run = bulk_scenario().run(backend=KollapsBackend())
        assert run.backend == "kollaps"


class TestLifecycle:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_every_backend_executes_the_same_compiled_scenario(
            self, backend):
        run = bulk_scenario().run(backend=backend)
        assert isinstance(run, ScenarioRun)
        assert run.backend == backend
        assert run.scenario == "point-to-point"
        assert run.until == pytest.approx(4.0)
        metrics = run.metric("i")
        assert isinstance(metrics, Metrics)
        assert metrics.primary == "throughput_mean"
        assert metrics.value > 0

    @pytest.mark.parametrize("backend",
                             ("kollaps", "baremetal", "mininet", "maxinet"))
    def test_emulating_backends_shape_to_the_provisioned_rate(self, backend):
        run = bulk_scenario().run(backend=backend)
        assert run["i"].mean_goodput == pytest.approx(50 * MBPS, rel=0.10)

    def test_trickle_overshoots_like_the_paper(self):
        from repro.baselines.trickle import TrickleShaper
        run = bulk_scenario().run(backend="trickle",
                                  physical_link_rate=40e9)
        expected = TrickleShaper(50 * MBPS, link_rate=40e9).achieved_rate()
        assert run["i"].mean_goodput == pytest.approx(expected)
        assert run["i"].relative_error(50 * MBPS) > 0.35

    def test_trickle_meters_demand_limited_flows_at_their_demand(self):
        from repro.baselines.trickle import TrickleShaper
        from repro.scenario import udp_blast
        compiled = (point_to_point(100 * MBPS)
                    .workload(udp_blast("client", "server", "1Mbps",
                                        key="u"))
                    .deploy(seed=1, duration=2.0).compile())
        run = compiled.run(backend="trickle", physical_link_rate=40e9)
        expected = TrickleShaper(1e6, link_rate=40e9).achieved_rate()
        assert run["u"] == pytest.approx(expected)
        assert run["u"] < 10 * MBPS    # nowhere near the 100 Mb/s path

    def test_kollaps_backend_matches_direct_engine_wiring(self):
        compiled = bulk_scenario()
        run = compiled.run(backend="kollaps")
        engine = compiled.start()
        engine.run(until=4.0)
        assert run.engine.fluid.mean_throughput("i", 1.0, 4.0) == \
            pytest.approx(engine.fluid.mean_throughput("i", 1.0, 4.0))

    def test_custom_workload_flows_through_backend(self):
        state = {}

        def install(system):
            state["backend"] = system.scenario_backend
            return 41

        def collect(system, until, installed):
            return installed + 1

        compiled = (point_to_point(50 * MBPS)
                    .workload(custom("probe", install, collect=collect))
                    .deploy(seed=1, duration=1.0).compile())
        run = compiled.run(backend="baremetal")
        assert run["probe"] == 42
        assert state["backend"] == "baremetal"


class TestCapabilities:
    def test_mininet_rejects_fast_links(self):
        compiled = (point_to_point(2e9)
                    .workload(flow("client", "server", key="f"))
                    .deploy(seed=1).compile())
        with pytest.raises(BackendCompatibilityError) as error:
            compiled.run(backend="mininet")
        assert "1 Gb/s" in str(error.value)

    def test_mininet_rejects_oversized_topologies(self):
        compiled = (star([f"n{i}" for i in range(8)])
                    .deploy(seed=1).compile())
        with pytest.raises(BackendCompatibilityError) as error:
            compiled.run(backend="mininet", element_budget=4)
        assert "budget" in str(error.value)

    def test_problems_aggregate_into_one_error(self):
        """Compile-against-backend reports every problem at once."""
        compiled = (point_to_point(50 * MBPS)
                    .workload(ping("client", "server"),
                              flow("client", "server", key="f"))
                    .at(2, set_link("client", "s0", latency="5ms"))
                    .deploy(seed=1).compile())
        with pytest.raises(BackendCompatibilityError) as error:
            compiled.run(backend="trickle")
        message = str(error.value)
        assert "dynamic event" in message          # no runtime changes
        assert "packet plane" in message           # no ping on trickle
        assert message.count(";") >= 1             # several problems listed

    def test_dynamic_events_only_run_on_kollaps(self):
        compiled = (point_to_point(50 * MBPS)
                    .workload(flow("client", "server", key="f"))
                    .at(2, set_link("client", "s0", latency="5ms"))
                    .deploy(seed=1, duration=3.0).compile())
        assert compiled.run(backend="kollaps").backend == "kollaps"
        with pytest.raises(BackendCompatibilityError):
            compiled.run(backend="baremetal")

    def test_validate_backend_reports_without_raising(self):
        compiled = (point_to_point(2e9)
                    .workload(ping("client", "server"))
                    .deploy(seed=1).compile())
        assert compiled.validate_backend("kollaps") == []
        problems = compiled.validate_backend("mininet")
        assert len(problems) == 4          # one per >1 Gb/s half-link
        assert all("Gb/s" in problem for problem in problems)

    def test_trickle_rejects_plane_less_custom_workloads(self):
        compiled = (point_to_point(50 * MBPS)
                    .workload(custom("x", lambda system: None, needs=()))
                    .deploy(seed=1).compile())
        with pytest.raises(BackendCompatibilityError) as error:
            compiled.run(backend="trickle")
        assert "flow-style bulk workloads" in str(error.value)

    def test_trickle_needs_a_provisioned_rate(self):
        compiled = (Scenario.build("open").service("a").service("b")
                    .link("a", "b", latency="1ms")
                    .workload(flow("a", "b", key="f"))
                    .deploy(seed=1).compile())
        with pytest.raises(BackendCompatibilityError) as error:
            compiled.run(backend="trickle")
        assert "provisioned rate" in str(error.value)

    def test_probe_planes_reports_exposed_surfaces(self):
        from repro.netstack.plane import probe_planes
        compiled = bulk_scenario()
        engine = compiled.engine()
        assert probe_planes(engine) == {"packet", "bulk"}
        assert probe_planes(object()) == frozenset()


class TestDeterminism:
    @pytest.mark.parametrize("backend",
                             ("kollaps", "baremetal", "mininet", "maxinet"))
    def test_same_seed_yields_identical_metrics(self, backend):
        """The same compiled scenario + seed reruns bit-identically."""
        compiled = probing_scenario(seed=13)
        first = compiled.run(backend=backend)
        second = compiled.run(backend=backend)
        assert first.metrics == second.metrics
        assert first.to_csv() == second.to_csv()

    def test_trickle_is_deterministic(self):
        compiled = bulk_scenario(seed=13)
        first = compiled.run(backend="trickle", physical_link_rate=40e9)
        second = compiled.run(backend="trickle", physical_link_rate=40e9)
        assert first.metrics == second.metrics

    def test_different_seeds_differ_on_a_jittered_link(self):
        def jittered(seed):
            return (point_to_point(50 * MBPS, latency=0.004, jitter=0.001)
                    .workload(ping("client", "server", count=10,
                                   interval=0.05))
                    .deploy(seed=seed, duration=2.0).compile())
        run_a = jittered(13).run(backend="baremetal")
        run_b = jittered(14).run(backend="baremetal")
        key = "ping:client->server"
        assert run_a.metric(key).latency != run_b.metric(key).latency


class TestResultsApi:
    def test_getitem_lists_available_keys_on_miss(self):
        run = bulk_scenario().run(backend="kollaps")
        with pytest.raises(KeyError) as error:
            run["nope"]
        message = str(error.value)
        assert "nope" in message
        assert "available workload keys" in message
        assert "i" in message

    def test_metric_lists_available_keys_on_miss(self):
        run = bulk_scenario().run(backend="kollaps")
        with pytest.raises(KeyError) as error:
            run.metric("nope")
        assert "available workload keys" in str(error.value)

    def test_compare_across_backends(self):
        compiled = bulk_scenario()
        baseline = compiled.run(backend="baremetal")
        other = compiled.run(backend="kollaps")
        comparison = baseline.compare(other)
        assert comparison.baseline_backend == "baremetal"
        assert comparison.other_backend == "kollaps"
        assert comparison.deviation("i") < 0.10
        delta = comparison["i"]
        assert delta.metric == "throughput_mean"
        assert delta.baseline == pytest.approx(
            baseline.metric("i").value)

    def test_compare_against_itself_is_zero(self):
        run = bulk_scenario().run(backend="kollaps")
        assert run.compare(run).deviation("i") == 0.0

    def test_compare_skips_workloads_without_a_headline_stat(self):
        """Non-numeric custom results must not fake a 0% deviation."""
        compiled = (point_to_point(50 * MBPS)
                    .workload(custom(
                        "pair", lambda system: None,
                        collect=lambda system, until, state: (1.0, 2.0)))
                    .deploy(seed=1, duration=1.0).compile())
        run = compiled.run(backend="baremetal")
        assert run["pair"] == (1.0, 2.0)
        assert run.metric("pair").summary == {}
        comparison = run.compare(run)
        with pytest.raises(KeyError):
            comparison["pair"]

    def test_compare_unknown_key_lists_available(self):
        run = bulk_scenario().run(backend="kollaps")
        with pytest.raises(KeyError) as error:
            run.compare(run)["nope"]
        assert "available workload keys" in str(error.value)

    def test_to_dict_round_trips_through_json(self):
        import json
        run = probing_scenario().run(backend="kollaps")
        payload = json.loads(json.dumps(run.to_dict()))
        assert payload["backend"] == "kollaps"
        assert set(payload["workloads"]) == {"i", "ping:c2->server"}
        assert payload["workloads"]["i"]["primary"] == "throughput_mean"
        assert payload["workloads"]["ping:c2->server"]["latency"]

    def test_to_csv_has_summaries_and_series(self):
        run = probing_scenario().run(backend="kollaps")
        lines = run.to_csv().splitlines()
        assert lines[0] == "workload,series,time,value"
        assert any(line.startswith("i,summary.throughput_mean,")
                   for line in lines)
        assert any(line.startswith("i,throughput,") for line in lines)
        assert any(line.startswith("ping:c2->server,latency,")
                   for line in lines)


class TestScenarioEngineHelper:
    def test_kollaps_engine_via_registry(self):
        from repro.core.engine import EmulationEngine
        from repro.experiments.base import scenario_engine
        engine = scenario_engine(point_to_point(50 * MBPS), machines=2,
                                 seed=3)
        assert isinstance(engine, EmulationEngine)
        assert engine.scenario_backend == "kollaps"

    def test_baseline_system_via_registry(self):
        from repro.baselines import BareMetalTestbed
        from repro.experiments.base import scenario_engine
        system = scenario_engine(point_to_point(50 * MBPS), seed=3,
                                 backend="baremetal")
        assert isinstance(system, BareMetalTestbed)


class TestExecutionBackendProtocol:
    def test_lifecycle_hooks_run_in_order(self):
        calls = []

        class Recorder(KollapsBackend):
            name = "recorder"

            def prepare(self, compiled):
                calls.append("prepare")
                return super().prepare(compiled)

            def start_workloads(self):
                calls.append("start")
                super().start_workloads()

            def advance(self, until):
                calls.append("advance")
                super().advance(until)

            def collect(self, until):
                calls.append("collect")
                return super().collect(until)

            def teardown(self):
                calls.append("teardown")

        run = bulk_scenario().run(backend=Recorder())
        assert calls == ["prepare", "start", "advance", "collect",
                         "teardown"]
        assert run.backend == "recorder"

    def test_teardown_runs_even_when_collection_fails(self):
        torn_down = []

        class Exploding(KollapsBackend):
            name = "exploding"

            def collect(self, until):
                raise RuntimeError("collector died")

            def teardown(self):
                torn_down.append(True)

        with pytest.raises(RuntimeError, match="collector died"):
            bulk_scenario().run(backend=Exploding())
        assert torn_down == [True]

    def test_subclass_must_implement_build(self):
        backend = ExecutionBackend()
        with pytest.raises(NotImplementedError):
            backend.prepare(bulk_scenario())
