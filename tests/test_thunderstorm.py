"""Tests for the THUNDERSTORM-style dynamic-scenario DSL."""

import pytest

from repro.topogen import point_to_point_topology, star_topology
from repro.topology import (
    Bridge,
    EventAction,
    LinkProperties,
    Service,
    ThunderstormError,
    Topology,
    compile_scenario,
    parse_scenario,
)


def two_bridge_topology() -> Topology:
    topology = Topology("dsl")
    topology.add_service(Service("c1", image="iperf"))
    topology.add_service(Service("sv", image="nginx"))
    topology.add_bridge(Bridge("s1"))
    topology.add_bridge(Bridge("s2"))
    topology.add_link("c1", "s1", LinkProperties(latency=0.010, bandwidth=10e6))
    topology.add_link("s1", "s2", LinkProperties(latency=0.020, bandwidth=100e6))
    topology.add_link("s2", "sv", LinkProperties(latency=0.005, bandwidth=50e6))
    return topology


class TestParsing:
    def test_empty_and_comments(self):
        assert parse_scenario("") == []
        assert parse_scenario("# only a comment\n\n   \n") == []

    def test_at_set_link(self):
        directives = parse_scenario("at 120 set link c1--s1 jitter=0.5ms")
        assert len(directives) == 1
        directive = directives[0]
        assert directive.time == 120.0
        assert directive.verb == "set"
        assert directive.origin == "c1"
        assert directive.destination == "s1"
        assert directive.bidirectional is True
        assert directive.changes == {"jitter": pytest.approx(0.0005)}

    def test_time_units(self):
        directives = parse_scenario(
            "at 200ms leave link a->b\nat 2min leave link a->b")
        assert directives[0].time == pytest.approx(0.2)
        assert directives[1].time == pytest.approx(120.0)

    def test_unidirectional_arrow(self):
        (directive,) = parse_scenario("at 1 leave link c1->s1")
        assert directive.bidirectional is False

    def test_percent_loss(self):
        (directive,) = parse_scenario("at 1 set link a--b loss=2%")
        assert directive.changes["loss"] == pytest.approx(0.02)

    def test_bandwidth_units(self):
        (directive,) = parse_scenario(
            "at 1 join link a--b up=100Mbps down=10Mbps latency=10ms")
        assert directive.changes["up"] == pytest.approx(100e6)
        assert directive.changes["down"] == pytest.approx(10e6)
        assert directive.changes["latency"] == pytest.approx(0.010)

    def test_periodic_expansion(self):
        directives = parse_scenario(
            "from 0 to 30 every 10 set link a--b loss=1%")
        assert [d.time for d in directives] == [0.0, 10.0, 20.0, 30.0]

    def test_periodic_inclusive_end_with_float_step(self):
        directives = parse_scenario(
            "from 0 to 1 every 0.1 set link a--b loss=1%")
        assert len(directives) == 11

    def test_directives_sorted_by_time(self):
        directives = parse_scenario(
            "at 50 leave link a--b\nat 10 set link a--b loss=1%")
        assert [d.time for d in directives] == [10.0, 50.0]

    def test_flap_form(self):
        (directive,) = parse_scenario("at 60 flap link c1--s1 for 2")
        assert directive.verb == "flap"
        assert directive.duration == 2.0

    def test_partition_groups(self):
        (directive,) = parse_scenario("at 10 partition a,b | c,d")
        assert directive.groups == [["a", "b"], ["c", "d"]]

    def test_partition_spaced_groups(self):
        (directive,) = parse_scenario("at 10 partition a, b | c")
        assert directive.groups == [["a", "b"], ["c"]]

    def test_node_directives(self):
        directives = parse_scenario(
            "at 1 leave service sv\nat 2 join bridge s1\nat 3 leave node x")
        assert [d.subject for d in directives] == ["service", "bridge", "node"]

    @pytest.mark.parametrize("bad", [
        "nonsense",
        "at",
        "at 10",
        "at 10 wiggle link a--b",
        "at 10 set link a--b",                    # no properties
        "at 10 set link a--b color=red",          # unknown property
        "at 10 set link a--b loss=200%",          # out of range
        "at 10 set link ab loss=1%",              # bad endpoints
        "at 10 leave link a--b loss=1%",          # leave takes no props
        "at 10 flap link a--b",                   # missing 'for'
        "at 10 flap link a--b for 0",             # non-positive duration
        "at 10 set service sv",                   # set on a node
        "at 10 leave service",                    # missing name
        "at -5 leave link a--b",                  # negative time
        "at 10 partition a,b",                    # single group
        "at 10 partition a | a",                  # duplicate node
        "at 10 heal now",                         # heal takes nothing
        "from 10 to 5 every 1 leave link a--b",   # backwards range
        "from 0 to 10 every 0 leave link a--b",   # zero step
        "from 0 to 10 leave link a--b",           # missing 'every'
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ThunderstormError):
            parse_scenario(bad)

    def test_error_carries_line_number(self):
        with pytest.raises(ThunderstormError, match="line 3"):
            parse_scenario("# fine\nat 1 leave link a--b\nbogus directive")


class TestCompilation:
    def test_set_link_compiles(self):
        schedule = compile_scenario(
            "at 120 set link c1--s1 jitter=0.5ms", two_bridge_topology())
        assert len(schedule) == 1
        event = schedule.events[0]
        assert event.action is EventAction.SET_LINK
        assert event.changes == {"jitter": pytest.approx(0.0005)}

    def test_leave_then_join_roundtrip(self):
        topology = two_bridge_topology()
        schedule = compile_scenario(
            "at 10 leave link c1--s1\n"
            "at 20 join link c1--s1 latency=15ms up=20Mbps down=20Mbps",
            topology)
        snapshots = schedule.snapshots(topology)
        # t=10: link gone; t=20: link back with the new properties.
        assert len(snapshots) == 3
        _, at10 = snapshots[1]
        assert not any(link.key == ("c1", "s1") for link in at10.links())
        _, at20 = snapshots[2]
        assert at20.get_link("c1", "s1").properties.latency == pytest.approx(0.015)
        assert at20.get_link("c1", "s1").properties.bandwidth == pytest.approx(20e6)

    def test_flap_restores_original_properties(self):
        topology = two_bridge_topology()
        schedule = compile_scenario("at 60 flap link c1--s1 for 2", topology)
        snapshots = schedule.snapshots(topology)
        assert [time for time, _ in snapshots] == [0.0, 60.0, 62.0]
        _, during = snapshots[1]
        assert not any(link.key == ("c1", "s1") for link in during.links())
        _, after = snapshots[2]
        restored = after.get_link("c1", "s1").properties
        assert restored.latency == pytest.approx(0.010)
        assert restored.bandwidth == pytest.approx(10e6)

    def test_flap_restores_modified_properties(self):
        # A 'set' before the flap must survive the flap: the compiler
        # captures properties at tear-down time, not at t=0.
        topology = two_bridge_topology()
        schedule = compile_scenario(
            "at 10 set link c1--s1 latency=99ms\n"
            "at 60 flap link c1--s1 for 2", topology)
        snapshots = schedule.snapshots(topology)
        _, after = snapshots[-1]
        assert after.get_link("c1", "s1").properties.latency == pytest.approx(0.099)

    def test_repeated_flaps_via_periodic(self):
        topology = two_bridge_topology()
        schedule = compile_scenario(
            "from 10 to 50 every 20 flap link c1--s1 for 5", topology)
        # Three flaps; each is one bidirectional leave plus two one-way
        # joins restoring each direction's properties.
        times = sorted(event.time for event in schedule.events)
        assert times == [10.0, 15.0, 15.0, 30.0, 35.0, 35.0, 50.0, 55.0, 55.0]
        snapshots = schedule.snapshots(topology)
        _, final = snapshots[-1]
        assert final.get_link("c1", "s1").properties.bandwidth == pytest.approx(10e6)

    def test_partition_and_heal(self):
        topology = star_topology(["a", "b", "c"], bandwidth=1e9)
        schedule = compile_scenario(
            "at 10 partition a | hub,b,c\nat 20 heal", topology)
        snapshots = schedule.snapshots(topology)
        _, cut = snapshots[1]
        assert not any(link.key in (("a", "hub"), ("hub", "a"))
                       for link in cut.links())
        # b and c keep their links.
        assert cut.get_link("b", "hub") is not None
        _, healed = snapshots[2]
        assert healed.get_link("a", "hub").properties.bandwidth == pytest.approx(1e9)
        assert healed.get_link("hub", "a").properties.bandwidth == pytest.approx(1e9)

    def test_partition_unknown_node(self):
        with pytest.raises(ThunderstormError, match="unknown node"):
            compile_scenario("at 10 partition nope | c1",
                             two_bridge_topology())

    def test_partition_cutting_nothing_fails(self):
        with pytest.raises(ThunderstormError, match="cuts no links"):
            compile_scenario("at 10 partition c1 | sv",
                             two_bridge_topology())

    def test_heal_without_partition_fails(self):
        with pytest.raises(ThunderstormError, match="no active partition"):
            compile_scenario("at 10 heal", two_bridge_topology())

    def test_unknown_link_fails_with_line(self):
        with pytest.raises(ThunderstormError, match="line 2"):
            compile_scenario("at 1 set link c1--s1 loss=1%\n"
                             "at 2 leave link c1--s9", two_bridge_topology())

    def test_leave_twice_fails(self):
        with pytest.raises(ThunderstormError):
            compile_scenario("at 1 leave link c1--s1\nat 2 leave link c1--s1",
                             two_bridge_topology())

    def test_service_leave_join(self):
        topology = two_bridge_topology()
        schedule = compile_scenario(
            "at 10 leave service sv\nat 20 join service sv", topology)
        snapshots = schedule.snapshots(topology)
        _, gone = snapshots[1]
        assert "sv" not in gone.services
        _, back = snapshots[2]
        assert back.services["sv"].image == "nginx"

    def test_compiles_against_generated_topology(self):
        topology = point_to_point_topology(100e6, latency=0.010)
        schedule = compile_scenario(
            "from 1 to 5 every 1 set link client--s0 loss=1%", topology)
        assert len(schedule) == 5


class TestEngineIntegration:
    def test_scenario_drives_engine(self):
        from repro.core import EmulationEngine, EngineConfig

        topology = two_bridge_topology()
        schedule = compile_scenario(
            "at 1 set link s1--s2 latency=200ms", topology)
        engine = EmulationEngine(topology, schedule,
                                 config=EngineConfig(machines=1, seed=3))
        before = engine.current_state.collapsed.path("c1", "sv").latency
        engine.run(until=2.0)
        after = engine.current_state.collapsed.path("c1", "sv").latency
        assert after == pytest.approx(before + 0.180, rel=0.01)
