"""Tests for the data-center generators and the packet-level UDP blaster."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import UdpBlaster
from repro.core import EmulationEngine, EngineConfig, collapse
from repro.topogen import (
    fat_tree_topology,
    jellyfish_topology,
    point_to_point_topology,
)

MBPS = 1e6


class TestFatTree:
    def test_k4_shape(self):
        topology = fat_tree_topology(4)
        # k=4: 4 cores, 4 pods x (2 agg + 2 edge), 16 hosts.
        assert len(topology.bridges) == 4 + 4 * 4
        assert len(topology.services) == 16
        # Each edge switch: 2 uplinks + 2 hosts; each agg: 2 up + 2 down.
        topology.validate()

    def test_every_host_pair_reachable(self):
        collapsed = collapse(fat_tree_topology(4))
        hosts = [f"h{i}" for i in range(16)]
        assert collapsed.path(hosts[0], hosts[15]) is not None
        assert collapsed.path(hosts[3], hosts[4]) is not None

    def test_path_hop_structure(self):
        collapsed = collapse(fat_tree_topology(4, latency=25e-6))
        # Same edge switch: host-edge-host = 2 links.
        same_edge = collapsed.path("h0", "h1")
        assert same_edge.properties.latency == pytest.approx(50e-6)
        # Different pods: host-edge-agg-core-agg-edge-host = 6 links.
        cross_pod = collapsed.path("h0", "h15")
        assert cross_pod.properties.latency == pytest.approx(150e-6)

    def test_thinned_host_layer(self):
        topology = fat_tree_topology(4, hosts_per_edge=1)
        assert len(topology.services) == 8

    @pytest.mark.parametrize("bad", [0, 3, 5, -2])
    def test_odd_arity_rejected(self, bad):
        with pytest.raises(ValueError):
            fat_tree_topology(bad)

    def test_bad_hosts_per_edge(self):
        with pytest.raises(ValueError):
            fat_tree_topology(4, hosts_per_edge=3)

    def test_runs_under_emulation(self):
        engine = EmulationEngine(
            fat_tree_topology(4, bandwidth=1e9),
            config=EngineConfig(machines=4, seed=6,
                                enforce_physical_limits=False))
        engine.start_flow("f", "h0", "h15")
        engine.run(until=2.0)
        assert engine.fluid.mean_throughput("f", 1.0, 2.0) == \
            pytest.approx(1e9, rel=0.10)


class TestJellyfish:
    def test_degree_bound_respected(self):
        topology = jellyfish_topology(12, 4, seed=3)
        switch_degree = {name: 0 for name in topology.bridges}
        for link in topology.links():
            for end in (link.source, link.destination):
                if end in switch_degree and \
                        (link.source in switch_degree
                         and link.destination in switch_degree):
                    switch_degree[end] += 1
        # Each undirected switch-switch edge counts twice per endpoint
        # (two unidirectional links), so the bound is 2 * degree.
        assert all(count <= 2 * 4 for count in switch_degree.values())

    def test_hosts_attached(self):
        topology = jellyfish_topology(10, 3, hosts_per_switch=2, seed=1)
        assert len(topology.services) == 20

    def test_deterministic_for_seed(self):
        first = jellyfish_topology(12, 4, seed=9)
        second = jellyfish_topology(12, 4, seed=9)
        assert sorted(link.key for link in first.links()) == \
            sorted(link.key for link in second.links())

    def test_different_seeds_differ(self):
        first = jellyfish_topology(16, 4, seed=1)
        second = jellyfish_topology(16, 4, seed=2)
        assert sorted(link.key for link in first.links()) != \
            sorted(link.key for link in second.links())

    def test_connected_enough(self):
        collapsed = collapse(jellyfish_topology(12, 4, seed=5))
        reachable = sum(1 for path in collapsed.paths())
        # 12 hosts: nearly all ordered pairs reachable.
        assert reachable >= 12 * 11 * 0.9

    @given(st.integers(6, 16), st.integers(2, 4), st.integers(0, 5))
    @settings(max_examples=15, deadline=None)
    def test_never_exceeds_ports(self, switches, degree, seed):
        if switches <= degree:
            return
        topology = jellyfish_topology(switches, degree, seed=seed)
        counts = {name: 0 for name in topology.bridges}
        for link in topology.links():
            if link.source in counts and link.destination in counts:
                counts[link.source] += 1
        assert all(count <= degree for count in counts.values())

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            jellyfish_topology(3, 4)
        with pytest.raises(ValueError):
            jellyfish_topology(10, 1)


class TestUdpBlaster:
    def make_engine(self, bandwidth=10 * MBPS, loss=0.0):
        return EmulationEngine(
            point_to_point_topology(bandwidth, latency=0.010, loss=loss),
            config=EngineConfig(machines=1, seed=8,
                                enforce_bandwidth_sharing=False))

    def test_delivers_at_configured_rate(self):
        engine = self.make_engine()
        blaster = UdpBlaster(engine.sim, engine.dataplane, "client",
                             "server", rate=2 * MBPS)
        engine.run(until=10.0)
        assert blaster.stats.delivery_rate(10.0) == \
            pytest.approx(2 * MBPS, rel=0.05)
        assert blaster.stats.loss_rate == 0.0

    def test_oversubscription_is_dropped_not_slowed(self):
        # Offering 4x the link: the sender never backs off; the excess is
        # refused/dropped and delivery caps at the wire.
        engine = self.make_engine(bandwidth=5 * MBPS)
        blaster = UdpBlaster(engine.sim, engine.dataplane, "client",
                             "server", rate=20 * MBPS)
        engine.run(until=10.0)
        assert blaster.stats.delivery_rate(10.0) <= 5 * MBPS * 1.05
        assert blaster.stats.loss_rate > 0.5
        assert blaster.stats.blocked > 0

    def test_link_loss_visible(self):
        engine = self.make_engine(loss=0.2)
        blaster = UdpBlaster(engine.sim, engine.dataplane, "client",
                             "server", rate=1 * MBPS)
        engine.run(until=20.0)
        assert blaster.stats.loss_rate == pytest.approx(0.2, abs=0.05)

    def test_one_way_delay_measured(self):
        engine = self.make_engine()
        blaster = UdpBlaster(engine.sim, engine.dataplane, "client",
                             "server", rate=1 * MBPS)
        engine.run(until=5.0)
        assert blaster.stats.mean_delay == pytest.approx(0.010, rel=0.2)

    def test_stop_time_respected(self):
        engine = self.make_engine()
        blaster = UdpBlaster(engine.sim, engine.dataplane, "client",
                             "server", rate=1 * MBPS, stop=2.0)
        engine.run(until=10.0)
        sent_after = blaster.stats.sent
        assert sent_after == pytest.approx(2.0 * 1e6 / (1400 * 8), rel=0.05)

    def test_bad_rate_rejected(self):
        engine = self.make_engine()
        with pytest.raises(ValueError):
            UdpBlaster(engine.sim, engine.dataplane, "client", "server",
                       rate=0.0)
