"""The unified Scenario API: builder, compilation, parity and round-trips."""

import pytest

from repro.scenario import (
    Scenario,
    flow,
    iperf,
    link_down,
    link_up,
    node_leave,
    ping,
    set_link,
)
from repro.topology import EventAction, TopologyError, parse_experiment_text
from repro.units import UnitError

FIGURE1_TEXT = """
experiment:
  services:
    name: c1
    image: "iperf"
    name: sv
    image: "nginx"
    replicas: 2
  bridges:
    name: s1
    name: s2
  links:
    orig: c1
    dest: s1
    latency: 10
    up: 10Mbps
    down: 10Mbps
    orig: s1
    dest: s2
    latency: 20
    up: 100Mbps
    down: 100Mbps
    orig: sv
    dest: s2
    latency: 5
    up: 50Mbps
    down: 50Mbps
"""


def figure1_builder() -> Scenario:
    return (Scenario.build("figure1")
            .service("c1", image="iperf")
            .service("sv", image="nginx", replicas=2)
            .bridges("s1", "s2")
            .link("c1", "s1", latency="10ms", up="10Mbps")
            .link("s1", "s2", latency="20ms", up="100Mbps")
            .link("sv", "s2", latency="5ms", up="50Mbps"))


class TestBuilderParity:
    def test_builder_matches_text_dsl_byte_for_byte(self):
        """The acceptance contract: identical collapsed path tables."""
        built = figure1_builder().compile()
        parsed = Scenario.from_text(FIGURE1_TEXT).compile()
        assert built.path_table() == parsed.path_table()
        assert built.path_table()  # non-empty

    def test_builder_matches_legacy_parser(self):
        built = figure1_builder().compile()
        topology, _schedule = parse_experiment_text(FIGURE1_TEXT)
        assert set(built.topology.services) == set(topology.services)
        assert set(built.topology.bridges) == set(topology.bridges)
        assert built.topology.link_count() == topology.link_count()

    def test_numeric_and_string_units_agree(self):
        numeric = (Scenario.build().service("a").service("b")
                   .link("a", "b", latency=0.010, up=10e6).compile())
        strings = (Scenario.build().service("a").service("b")
                   .link("a", "b", latency="10ms", up="10Mbps").compile())
        assert numeric.path_table() == strings.path_table()

    def test_declaration_order_is_free(self):
        """Links may precede the nodes they reference; compile() resolves."""
        compiled = (Scenario.build()
                    .link("a", "b", up="1Mbps")
                    .service("a").service("b")
                    .compile())
        assert compiled.topology.link_count() == 2


class TestDescribeRoundTrip:
    def test_figure1_round_trips(self):
        built = figure1_builder().compile()
        reparsed = Scenario.from_text(built.describe()).compile()
        assert reparsed.path_table() == built.path_table()
        assert set(reparsed.topology.services) == {"c1", "sv"}
        assert reparsed.topology.services["sv"].replicas == 2

    def test_events_round_trip(self):
        built = (figure1_builder()
                 .at(30, set_link("s1", "s2", latency="80ms"))
                 .at(40, link_down("c1", "s1"))
                 .at(42, link_up("c1", "s1", latency="10ms", up="10Mbps"))
                 .at(50, node_leave("sv"))
                 .compile())
        reparsed = Scenario.from_text(built.describe()).compile()
        assert len(reparsed.schedule) == len(built.schedule) == 4
        assert ([e.action for e in reparsed.schedule]
                == [e.action for e in built.schedule])
        assert ([e.time for e in reparsed.schedule]
                == [30.0, 40.0, 42.0, 50.0])
        assert reparsed.schedule.events[0].changes == \
            pytest.approx({"latency": 0.080})

    def test_uncapping_event_round_trips(self):
        """A set_link lifting the cap (bandwidth=inf) survives describe()."""
        built = (Scenario.build("t").service("a").service("b")
                 .link("a", "b", latency="1ms", up="10Mbps")
                 .at(5, set_link("a", "b", bandwidth=float("inf")))
                 .compile())
        reparsed = Scenario.from_text(built.describe()).compile()
        assert reparsed.schedule.events[0].changes["bandwidth"] \
            == float("inf")

    def test_unidirectional_link_round_trips(self):
        built = (Scenario.build().service("a").service("b")
                 .link("a", "b", up="5Mbps", bidirectional=False).compile())
        reparsed = Scenario.from_text(built.describe()).compile()
        assert reparsed.topology.link_count() == 1

    def test_legacy_parser_reads_describe_output(self):
        built = figure1_builder().compile()
        topology, _ = parse_experiment_text(built.describe())
        assert topology.link_count() == 6


class TestValidation:
    def test_duplicate_names_all_listed(self):
        builder = (Scenario.build()
                   .service("a").service("a").service("b").bridge("b"))
        with pytest.raises(TopologyError) as error:
            builder.compile()
        assert "duplicate" in str(error.value)
        assert "a" in str(error.value) and "b" in str(error.value)

    def test_undeclared_endpoints_all_listed(self):
        builder = (Scenario.build().service("real")
                   .link("real", "ghost1").link("ghost2", "real"))
        with pytest.raises(TopologyError) as error:
            builder.compile()
        message = str(error.value)
        assert "undeclared" in message
        assert "ghost1" in message and "ghost2" in message
        assert "real" not in message.split("undeclared")[1].split(":")[0]

    def test_duplicate_service_in_text_dsl_rejected_clearly(self):
        text = FIGURE1_TEXT + "\n  services:\n    name: c1\n    image: x\n"
        with pytest.raises(TopologyError) as error:
            Scenario.from_text(text).compile()
        assert "duplicate" in str(error.value)
        assert "c1" in str(error.value)

    def test_bad_unit_string_raises(self):
        with pytest.raises(UnitError):
            Scenario.build().service("a").service("b").link(
                "a", "b", up="10Mbbps")

    def test_bad_event_reference_fails_at_compile(self):
        builder = (figure1_builder()
                   .at(10, set_link("c1", "nope", latency="1ms")))
        with pytest.raises(TopologyError):
            builder.compile()

    def test_unknown_deploy_tunable_rejected(self):
        with pytest.raises(TypeError) as error:
            Scenario.build().deploy(machines=2, warp_factor=9)
        assert "warp_factor" in str(error.value)

    def test_empty_scenario_rejected(self):
        with pytest.raises(TopologyError):
            Scenario.build().compile()

    def test_duplicate_workload_keys_rejected(self):
        builder = (figure1_builder()
                   .workload(ping("c1", "sv.0"), ping("c1", "sv.0")))
        with pytest.raises(TopologyError) as error:
            builder.compile()
        assert "workload" in str(error.value)
        assert "ping:c1->sv.0" in str(error.value)

    def test_incremental_deploy_preserves_earlier_settings(self):
        builder = figure1_builder().deploy(machines=4, seed=7)
        builder.deploy(duration=5.0)   # a later partial override
        compiled = builder.compile()
        assert compiled.config.machines == 4
        assert compiled.config.seed == 7
        assert compiled.duration == 5.0


class TestRun:
    def test_run_collects_workload_results(self):
        run = (figure1_builder()
               .workload(ping("c1", "sv.0", count=20, interval=0.02))
               .workload(iperf("c1", "sv.0", duration=8.0))
               .deploy(machines=2, seed=42, duration=10.0)
               .compile()
               .run())
        stats = run["ping:c1->sv.0"]
        assert stats.mean_rtt == pytest.approx(0.070, rel=0.05)
        result = run["iperf:c1->sv.0"]
        assert result.mean_goodput == pytest.approx(10e6, rel=0.15)

    def test_run_matches_manual_engine_wiring(self):
        """Builder-run and hand-wired engine agree on throughput."""
        from repro.core import EmulationEngine, EngineConfig

        compiled = (figure1_builder()
                    .workload(flow("c1", "sv.0", key="f"))
                    .deploy(machines=2, seed=42).compile())
        run = compiled.run(until=10.0)

        topology, schedule = parse_experiment_text(FIGURE1_TEXT)
        engine = EmulationEngine(topology, schedule,
                                 config=EngineConfig(machines=2, seed=42))
        engine.start_flow("f", "c1", "sv.0")
        engine.run(until=10.0)

        assert run.engine.fluid.mean_throughput("f", 0, 10) == \
            pytest.approx(engine.fluid.mean_throughput("f", 0, 10))

    def test_events_apply_during_run(self):
        run = (figure1_builder()
               .at(5, set_link("s1", "s2", bandwidth="1Mbps"))
               .deploy(machines=1, seed=1, duration=6.0)
               .compile().run())
        collapsed = run.engine.current_state.collapsed
        assert collapsed.path("c1", "sv.0").bandwidth == pytest.approx(1e6)

    def test_script_merges_into_schedule(self):
        compiled = (figure1_builder()
                    .script("at 2 set link s1--s2 latency=80ms\n")
                    .at(4, set_link("c1", "s1", latency="15ms"))
                    .compile())
        assert len(compiled.schedule) == 2
        assert [e.time for e in compiled.schedule] == [2.0, 4.0]


class TestPlanAndFrontends:
    def test_plan_places_all_containers(self):
        plan = (figure1_builder().deploy(machines=2).compile()
                .plan(orchestrator="swarm"))
        assert sorted(plan.placement) == ["c1", "sv.0", "sv.1"]
        assert plan.needs_bootstrapper

    def test_from_topology_preserves_asymmetric_links(self):
        from repro.topogen import aws_star_topology
        original = aws_star_topology()
        adopted = Scenario.from_topology(original).compile().topology
        for link in original.links():
            twin = adopted.get_link(link.source, link.destination)
            assert twin.properties == link.properties
        assert adopted.link_count() == original.link_count()

    def test_topogen_shims_match_scenario_generators(self):
        from repro.scenario.topologies import scale_free
        from repro.topogen import scale_free_topology
        via_shim = scale_free_topology(60, seed=3)
        via_builder = scale_free(60, seed=3).compile().topology
        assert (Scenario.from_topology(via_shim).compile().path_table()
                == Scenario.from_topology(via_builder).compile().path_table())

    def test_at_accepts_unit_strings_for_time(self):
        compiled = (figure1_builder()
                    .at("2min", set_link("s1", "s2", latency="80ms"))
                    .compile())
        assert compiled.schedule.events[0].time == 120.0
