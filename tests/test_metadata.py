"""Metadata wire format and the Aeron-like media driver."""

import pytest

from repro.metadata import (
    FlowRecord,
    MediaDriver,
    MetadataMessage,
    decode_message,
    encode_message,
    encoded_size,
)
from repro.metadata.encoding import datagram_count
from repro.sim import Simulator


def sample_message(flow_count=3, links_per_flow=4, sender=0):
    flows = tuple(
        FlowRecord(source_index=i, destination_index=i + 1,
                   used_bandwidth=(i + 1) * 1e6,
                   link_ids=tuple(range(links_per_flow)))
        for i in range(flow_count))
    return MetadataMessage(sender=sender, flows=flows)


class TestEncoding:
    def test_round_trip(self):
        message = sample_message()
        decoded = decode_message(encode_message(message), sender=0)
        assert decoded == message

    def test_round_trip_wide(self):
        flows = (FlowRecord(300, 400, 5e6, (257, 1000)),)
        message = MetadataMessage(sender=1, flows=flows)
        decoded = decode_message(encode_message(message, wide=True),
                                 sender=1, wide=True)
        assert decoded == message

    def test_narrow_rejects_large_ids(self):
        flows = (FlowRecord(300, 0, 1e6, ()),)
        with pytest.raises(ValueError):
            encode_message(MetadataMessage(sender=0, flows=flows))

    def test_size_formula_matches_encoding(self):
        for flow_count in (0, 1, 5, 40):
            message = sample_message(flow_count=flow_count)
            assert encoded_size(message) == len(encode_message(message))
            assert encoded_size(message, wide=True) == \
                len(encode_message(message, wide=True))

    def test_paper_sizing_narrow(self):
        """§4.2: <=256 nodes packs links and identifiers in 1 byte each."""
        message = sample_message(flow_count=1, links_per_flow=3)
        # 2 (count) + 4 (bw) + 1+1 (src/dst) + 1 (nlinks) + 3 (links) = 12.
        assert encoded_size(message) == 12

    def test_empty_message(self):
        message = MetadataMessage(sender=0, flows=())
        assert encoded_size(message) == 2
        assert decode_message(encode_message(message), sender=0) == message

    def test_bandwidth_quantized_to_kbps(self):
        flows = (FlowRecord(0, 1, 1_234_567.0, ()),)
        decoded = decode_message(
            encode_message(MetadataMessage(0, flows)), sender=0)
        assert decoded.flows[0].used_bandwidth == pytest.approx(1_235_000.0)

    def test_trailing_garbage_rejected(self):
        payload = encode_message(sample_message()) + b"\x00"
        with pytest.raises(ValueError):
            decode_message(payload, sender=0)

    def test_fits_single_datagram_at_scale(self):
        """A 40-flow report (§5.2 scale) still fits one UDP datagram."""
        message = sample_message(flow_count=40, links_per_flow=6)
        assert datagram_count(encoded_size(message)) == 1


class TestMediaDriver:
    def build_pair(self):
        sim = Simulator()
        left = MediaDriver(sim, "m0", network_delay=1e-3)
        right = MediaDriver(sim, "m1", network_delay=1e-3)
        left.connect(right)
        return sim, left, right

    def test_local_publish_costs_no_network(self):
        sim = Simulator()
        driver = MediaDriver(sim, "m0")
        seen = []
        driver.subscribe(seen.append)
        driver.publish_local(sample_message())
        assert len(seen) == 1
        assert driver.stats.bytes_sent == 0
        assert driver.stats.shared_memory_messages == 1

    def test_remote_publish_delivers_after_delay(self):
        sim, left, right = self.build_pair()
        seen = []
        right.subscribe(lambda m: seen.append((sim.now, m)))
        left.publish_to("m1", sample_message(sender=0))
        sim.run()
        assert len(seen) == 1
        assert seen[0][0] == pytest.approx(1e-3)
        assert seen[0][1].flows == sample_message().flows

    def test_byte_accounting_symmetric(self):
        sim, left, right = self.build_pair()
        right.subscribe(lambda m: None)
        message = sample_message()
        left.publish_to("m1", message)
        sim.run()
        payload = encoded_size(message)
        assert left.stats.bytes_sent == payload
        assert right.stats.bytes_received == payload
        assert left.stats.datagrams_sent == 1
        assert left.stats.wire_bytes_sent() == payload + 28

    def test_publish_broadcasts_to_all_peers(self):
        sim = Simulator()
        drivers = [MediaDriver(sim, f"m{i}", network_delay=1e-4)
                   for i in range(3)]
        for i in range(3):
            for j in range(i + 1, 3):
                drivers[i].connect(drivers[j])
        received = {i: [] for i in range(3)}
        for i, driver in enumerate(drivers):
            driver.subscribe(received[i].append)
        drivers[0].publish(sample_message(sender=0))
        sim.run()
        assert len(received[0]) == 1  # shared memory
        assert len(received[1]) == 1  # UDP
        assert len(received[2]) == 1

    def test_unknown_peer_raises(self):
        sim, left, _right = self.build_pair()
        with pytest.raises(KeyError):
            left.publish_to("m9", sample_message())

    def test_self_connect_rejected(self):
        sim = Simulator()
        driver = MediaDriver(sim, "m0")
        with pytest.raises(ValueError):
            driver.connect(MediaDriver(sim, "m0"))
