"""Baseline emulators: bare metal, Mininet-like, Maxinet-like, Trickle-like."""

import pytest

from repro.baselines import (
    BareMetalTestbed,
    MaxinetEmulator,
    MininetEmulator,
    TrickleShaper,
)
from repro.baselines.mininet import LinkUnsupportedError, ScaleError
from repro.baselines.trickle import (
    TRICKLE_DEFAULT_BUFFER_BYTES,
    TRICKLE_TUNED_BUFFER_BYTES,
)
from repro.netstack.packet import Packet
from repro.topogen import (
    point_to_point_topology,
    scale_free_topology,
    star_topology,
)

MBPS = 1e6


class TestBareMetal:
    def test_bulk_flow_fills_link(self):
        testbed = BareMetalTestbed(point_to_point_topology(100 * MBPS),
                                   seed=1)
        testbed.start_flow("f", "client", "server")
        testbed.run(until=10.0)
        assert testbed.fluid.mean_throughput("f", 4.0, 10.0) == \
            pytest.approx(100 * MBPS, rel=0.05)

    def test_packet_latency_has_no_overhead(self):
        testbed = BareMetalTestbed(
            point_to_point_topology(1e9, latency=0.020), seed=1)
        arrivals = []
        testbed.dataplane.send(Packet("client", "server", 800),
                               lambda p: arrivals.append(testbed.sim.now))
        testbed.run(until=1.0)
        assert arrivals[0] == pytest.approx(0.020, rel=0.001)


class TestMininet:
    def test_rejects_links_above_1gbps(self):
        """Table 2: Mininet cannot shape 2 Gb/s and 4 Gb/s links."""
        with pytest.raises(LinkUnsupportedError):
            MininetEmulator(point_to_point_topology(2e9))

    def test_accepts_1gbps(self):
        MininetEmulator(point_to_point_topology(1e9))

    def test_rejects_oversized_topologies(self):
        """Table 4: the 2000-element topology exceeds one machine."""
        with pytest.raises(ScaleError):
            MininetEmulator(scale_free_topology(2000, seed=1))

    def test_bulk_accuracy_close_to_baremetal(self):
        """Figure 5: long-lived flows are accurate under Mininet."""
        emulator = MininetEmulator(point_to_point_topology(100 * MBPS),
                                   seed=1)
        emulator.start_flow("f", "client", "server")
        emulator.run(until=10.0)
        assert emulator.fluid.mean_throughput("f", 4.0, 10.0) == \
            pytest.approx(100 * MBPS, rel=0.05)

    def test_switch_state_grows_with_connections(self):
        emulator = MininetEmulator(
            point_to_point_topology(100 * MBPS, latency=0.002), seed=1)
        arrivals = []
        for index in range(30):
            emulator.network.send(
                Packet("client", "server", 800, kind=f"conn{index}"),
                lambda p: arrivals.append(emulator.sim.now))
        emulator.run(until=5.0)
        switch = emulator.network.switches["s0"]
        assert len(switch.connections) == 30

    def test_per_packet_delay_exceeds_baremetal(self):
        baremetal = BareMetalTestbed(
            point_to_point_topology(1e9, latency=0.010), seed=1)
        mininet = MininetEmulator(
            point_to_point_topology(1e9, latency=0.010), seed=1)
        results = {}
        for name, system in (("bare", baremetal), ("mn", mininet)):
            arrivals = []
            system.dataplane.send(Packet("client", "server", 800),
                                  lambda p: arrivals.append(system.sim.now))
            system.run(until=1.0)
            results[name] = arrivals[0]
        assert results["mn"] > results["bare"]


class TestMaxinet:
    def test_first_packet_pays_controller_round_trip(self):
        emulator = MaxinetEmulator(
            point_to_point_topology(1e9, latency=0.005), seed=1)
        arrivals = []
        emulator.dataplane.send(
            Packet("client", "server", 800, kind="flow-a"),
            lambda p: arrivals.append(emulator.sim.now))
        # Stay within the installed rule's lifetime for the second packet.
        emulator.run(until=emulator.controller.rule_timeout * 0.5)
        sent_at = emulator.sim.now
        emulator.dataplane.send(
            Packet("client", "server", 800, kind="flow-a"),
            lambda p: arrivals.append(emulator.sim.now))
        emulator.run(until=2.0)
        first_delay = arrivals[0]
        second_delay = arrivals[1] - sent_at
        # First packet consults the controller; the second hits the rule.
        assert first_delay > 0.005 + emulator.controller.base_rtt * 0.9
        assert second_delay < first_delay
        assert emulator.controller.packet_ins == 1

    def test_controller_queueing_under_load(self):
        emulator = MaxinetEmulator(star_topology(
            [f"n{i}" for i in range(8)], latency=0.001), seed=1)
        arrivals = []
        for index in range(8):
            emulator.dataplane.send(
                Packet(f"n{index}", f"n{(index + 1) % 8}", 800,
                       kind=f"flow{index}"),
                lambda p: arrivals.append(emulator.sim.now))
        emulator.run(until=2.0)
        assert emulator.controller.packet_ins == 8
        # Shared controller serializes: the last arrival waited on others.
        assert max(arrivals) - min(arrivals) > emulator.controller.service_time * 4

    def test_rtt_error_larger_than_kollaps_scale(self):
        """Maxinet's deviation is milliseconds, not microseconds (Table 4)."""
        emulator = MaxinetEmulator(
            point_to_point_topology(1e9, latency=0.010), seed=1)
        arrivals = []
        emulator.dataplane.send(Packet("client", "server", 800, kind="f"),
                                lambda p: arrivals.append(emulator.sim.now))
        emulator.run(until=1.0)
        assert arrivals[0] - 0.010 > 1e-3


class TestTrickle:
    def test_default_buffer_grossly_inaccurate(self):
        """Table 2's default rows: overshoot of tens of percent or more."""
        for rate in (128e3, 256e3, 512e3, 128e6):
            shaper = TrickleShaper(rate)
            assert shaper.relative_error() > 0.35

    def test_tuned_buffer_accurate(self):
        for rate in (128e3, 512e3, 128e6, 1e9):
            shaper = TrickleShaper(
                rate, send_buffer_bytes=TRICKLE_TUNED_BUFFER_BYTES)
            assert shaper.relative_error() == pytest.approx(0.02, abs=0.005)

    def test_link_rate_clamps_overshoot(self):
        shaper = TrickleShaper(4e9, link_rate=4.2e9)
        assert shaper.achieved_rate() <= 4.2e9

    def test_error_deterministic_per_rate(self):
        assert TrickleShaper(128e3).achieved_rate() == \
            TrickleShaper(128e3).achieved_rate()

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            TrickleShaper(0.0)
