"""The §6/§7 extensions: multipath, interactivity, time dilation,
event-driven metadata."""

import pytest

from repro.core import EmulationEngine, EngineConfig
from repro.core.multipath import (
    MultipathProperties,
    k_shortest_paths,
    multipath_collapse,
)
from repro.core.properties import PathProperties
from repro.topology import (
    Bridge,
    DynamicEvent,
    EventAction,
    LinkProperties,
    Service,
    Topology,
)
from repro.topogen import dumbbell_topology, point_to_point_topology

MBPS = 1e6


def diamond_topology():
    """a -> {upper, lower} -> b: two disjoint paths of different latency."""
    topology = Topology("diamond")
    topology.add_service(Service("a"))
    topology.add_service(Service("b"))
    topology.add_bridge(Bridge("upper"))
    topology.add_bridge(Bridge("lower"))
    topology.add_link("a", "upper", LinkProperties(latency=0.005,
                                                   bandwidth=100 * MBPS))
    topology.add_link("upper", "b", LinkProperties(latency=0.005,
                                                   bandwidth=100 * MBPS))
    topology.add_link("a", "lower", LinkProperties(latency=0.020,
                                                   bandwidth=50 * MBPS))
    topology.add_link("lower", "b", LinkProperties(latency=0.020,
                                                   bandwidth=50 * MBPS))
    return topology


class TestKShortestPaths:
    def test_first_path_is_shortest(self):
        paths = k_shortest_paths(diamond_topology(), "a", "b", k=1)
        assert len(paths) == 1
        assert paths[0][0].destination == "upper"

    def test_second_path_is_alternative(self):
        paths = k_shortest_paths(diamond_topology(), "a", "b", k=2)
        assert len(paths) == 2
        assert paths[1][0].destination == "lower"

    def test_k_larger_than_path_count(self):
        paths = k_shortest_paths(diamond_topology(), "a", "b", k=10)
        assert len(paths) == 2  # only two exist

    def test_paths_are_loop_free(self):
        for path in k_shortest_paths(diamond_topology(), "a", "b", k=5):
            nodes = ["a"] + [link.destination for link in path]
            assert len(nodes) == len(set(nodes))

    def test_unreachable_returns_empty(self):
        topology = diamond_topology()
        topology.add_service(Service("isolated"))
        assert k_shortest_paths(topology, "a", "isolated", k=2) == []

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            k_shortest_paths(diamond_topology(), "a", "b", k=0)


class TestMultipathCollapse:
    def test_aggregate_bandwidth_sums_paths(self):
        properties = multipath_collapse(diamond_topology(), "a", "b", k=2)
        assert properties.bandwidth == 150 * MBPS

    def test_latency_is_mixture_mean(self):
        properties = multipath_collapse(diamond_topology(), "a", "b", k=2)
        assert properties.latency == pytest.approx((0.010 + 0.040) / 2)

    def test_path_spread_appears_as_jitter(self):
        properties = multipath_collapse(diamond_topology(), "a", "b", k=2)
        assert properties.jitter == pytest.approx(0.015)  # half the spread

    def test_single_path_reduces_to_plain_collapse(self):
        properties = multipath_collapse(diamond_topology(), "a", "b", k=1)
        assert properties.bandwidth == 100 * MBPS
        assert properties.jitter == 0.0


class TestInteractivity:
    def test_online_event_applies_immediately(self):
        engine = EmulationEngine(point_to_point_topology(50 * MBPS),
                                 config=EngineConfig(machines=1, seed=3))
        engine.start_flow("f", "client", "server")
        engine.run(until=5.0)
        engine.apply_event_online(DynamicEvent(
            time=engine.sim.now, action=EventAction.SET_LINK,
            origin="client", destination="s0",
            changes={"bandwidth": 5 * MBPS}))
        engine.run(until=10.0)
        assert engine.fluid.mean_throughput("f", 7.0, 10.0) == \
            pytest.approx(5 * MBPS, rel=0.15)

    def test_online_event_updates_latency_plane(self):
        from repro.netstack.packet import Packet
        engine = EmulationEngine(
            point_to_point_topology(1e9, latency=0.010),
            config=EngineConfig(enforce_bandwidth_sharing=False))
        engine.run(until=1.0)
        engine.apply_event_online(DynamicEvent(
            time=engine.sim.now, action=EventAction.SET_LINK,
            origin="client", destination="s0", changes={"latency": 0.050}))
        arrivals = []
        engine.dataplane.send(Packet("client", "server", 800),
                              lambda p: arrivals.append(engine.sim.now - 1.0))
        engine.run(until=2.0)
        assert arrivals[0] == pytest.approx(0.055, rel=0.02)


class TestTimeDilation:
    def test_overprovisioned_link_rejected(self):
        topology = point_to_point_topology(100e9)  # 100G on a 40G cluster
        with pytest.raises(ValueError):
            EmulationEngine(topology, config=EngineConfig())

    def test_time_dilation_admits_it(self):
        topology = point_to_point_topology(100e9)
        engine = EmulationEngine(topology,
                                 config=EngineConfig(time_dilation=4.0))
        engine.start_flow("f", "client", "server")
        engine.run(until=5.0)
        assert engine.fluid.mean_throughput("f", 2.0, 5.0) == \
            pytest.approx(100e9, rel=0.10)

    def test_disabled_check_admits_anything(self):
        topology = point_to_point_topology(100e9)
        EmulationEngine(topology, config=EngineConfig(
            enforce_physical_limits=False))

    def test_dilation_below_one_rejected(self):
        with pytest.raises(ValueError):
            EmulationEngine(point_to_point_topology(1e6),
                            config=EngineConfig(time_dilation=0.5))

    def test_dynamic_states_also_checked(self):
        from repro.topology import EventSchedule
        schedule = EventSchedule([DynamicEvent(
            time=5.0, action=EventAction.SET_LINK, origin="client",
            destination="s0", changes={"bandwidth": 100e9})])
        with pytest.raises(ValueError):
            EmulationEngine(point_to_point_topology(1e6), schedule,
                            config=EngineConfig())


class TestEventDrivenMetadata:
    def run_engine(self, on_change_only: bool) -> int:
        engine = EmulationEngine(
            dumbbell_topology(2, shared_bandwidth=50 * MBPS),
            config=EngineConfig(machines=2, seed=4,
                                metadata_on_change_only=on_change_only))
        engine.start_flow("f0", "client0", "server0")
        engine.start_flow("f1", "client1", "server1")
        engine.run(until=10.0)
        return (engine.total_metadata_wire_bytes(),
                engine.fluid.mean_throughput("f0", 6.0, 10.0)
                + engine.fluid.mean_throughput("f1", 6.0, 10.0))

    def test_change_only_reduces_traffic(self):
        periodic_bytes, periodic_rate = self.run_engine(False)
        change_bytes, change_rate = self.run_engine(True)
        # Steady long-lived flows: most periodic reports are redundant.
        assert change_bytes < periodic_bytes * 0.8
        # Emulation fidelity preserved.
        assert change_rate == pytest.approx(periodic_rate, rel=0.10)
        assert change_rate == pytest.approx(50 * MBPS, rel=0.10)
