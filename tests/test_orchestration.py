"""Deployment generator, placement strategies and the Swarm bootstrapper."""

import pytest

from repro.cluster import Cluster, Machine
from repro.orchestration import (
    DeploymentGenerator,
    KOLLAPS_TAG,
    SwarmBootstrapper,
)
from repro.topology import LinkProperties, Service, Topology
from repro.topogen import dumbbell_topology


def sample_topology():
    topology = Topology()
    topology.add_service(Service("web", image="nginx", replicas=3))
    topology.add_service(Service("db", image="postgres",
                                 command="postgres -c max_connections=10"))
    return topology


class TestPlacement:
    def test_spread_round_robins(self):
        generator = DeploymentGenerator(sample_topology())
        placement = generator.place(["m0", "m1"], strategy="spread")
        machines = [placement[c] for c in ("web.0", "web.1", "web.2", "db")]
        assert machines == ["m0", "m1", "m0", "m1"]

    def test_pack_fills_first_machine(self):
        generator = DeploymentGenerator(sample_topology())
        placement = generator.place(["m0", "m1"], strategy="pack")
        assert placement["web.0"] == placement["web.1"] == "m0"
        assert placement["db"] == "m1"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            DeploymentGenerator(sample_topology()).place(["m0"], "random")

    def test_no_machines_rejected(self):
        with pytest.raises(ValueError):
            DeploymentGenerator(sample_topology()).place([])


class TestSwarmPlan:
    def test_services_tagged_and_replicated(self):
        plan = DeploymentGenerator(sample_topology()).swarm_plan(["m0"])
        services = plan.document["services"]
        assert services["web"]["deploy"]["replicas"] == 3
        assert services["web"]["labels"][KOLLAPS_TAG] == "true"
        assert services["db"]["command"].startswith("postgres")

    def test_bootstrapper_is_global_and_untagged(self):
        plan = DeploymentGenerator(sample_topology()).swarm_plan(["m0", "m1"])
        bootstrapper = plan.document["services"]["kollaps-bootstrapper"]
        assert bootstrapper["deploy"]["mode"] == "global"
        assert bootstrapper["labels"][KOLLAPS_TAG] == "false"
        assert plan.needs_bootstrapper

    def test_overlay_network_declared(self):
        plan = DeploymentGenerator(sample_topology()).swarm_plan(["m0"])
        assert "kollaps_overlay" in plan.document["networks"]


class TestKubernetesPlan:
    def test_manifest_structure(self):
        plan = DeploymentGenerator(sample_topology()).kubernetes_plan(["m0"])
        kinds = [item["kind"] for item in plan.document["items"]]
        assert kinds.count("Deployment") == 2
        assert kinds.count("DaemonSet") == 1
        assert not plan.needs_bootstrapper

    def test_daemonset_is_privileged_with_net_admin(self):
        plan = DeploymentGenerator(sample_topology()).kubernetes_plan(["m0"])
        daemonset = [item for item in plan.document["items"]
                     if item["kind"] == "DaemonSet"][0]
        container = daemonset["spec"]["template"]["spec"]["containers"][0]
        assert container["securityContext"]["privileged"]
        assert "NET_ADMIN" in \
            container["securityContext"]["capabilities"]["add"]

    def test_emulated_containers_listed(self):
        plan = DeploymentGenerator(sample_topology()).kubernetes_plan(["m0"])
        assert set(plan.emulated_containers()) == \
            {"web.0", "web.1", "web.2", "db"}


class TestBootstrapper:
    def test_bootstrap_launches_privileged_manager(self):
        bootstrapper = SwarmBootstrapper("m0")
        manager = bootstrapper.bootstrap()
        assert manager.privileged
        assert manager.shares_host_pid
        assert manager.machine == "m0"

    def test_bootstrap_idempotent(self):
        bootstrapper = SwarmBootstrapper("m0")
        assert bootstrapper.bootstrap() is bootstrapper.bootstrap()

    def test_manager_supervises_only_tagged_containers(self):
        manager = SwarmBootstrapper("m0").bootstrap()
        assert manager.on_container_created("web.0", {KOLLAPS_TAG: "true"})
        assert not manager.on_container_created("sidecar", {})
        assert not manager.on_container_created(
            "other", {KOLLAPS_TAG: "false"})
        assert manager.supervised_containers == ["web.0"]


class TestCluster:
    def test_round_robin_even_spread(self):
        cluster = Cluster(3)
        placement = cluster.place_round_robin(
            [f"c{i}" for i in range(9)])
        counts = {}
        for machine in placement.values():
            counts[machine] = counts.get(machine, 0) + 1
        assert set(counts.values()) == {3}

    def test_machine_of(self):
        cluster = Cluster(2)
        cluster.place_round_robin(["a", "b"])
        assert cluster.machine_of("a") == "host-0"
        assert cluster.machine_of("b") == "host-1"
        assert cluster.machine_of("ghost") is None

    def test_double_placement_rejected(self):
        machine = Machine("m")
        machine.host("a")
        with pytest.raises(ValueError):
            machine.host("a")

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            Cluster(0)
