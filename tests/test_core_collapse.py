"""Network collapsing: shortest paths, determinism, restricted sources."""

import pytest

from repro.core import collapse
from repro.topology import Bridge, LinkProperties, Service, Topology, TopologyError


def figure1_topology():
    """The running example from Figure 1 (left)."""
    topology = Topology("figure1")
    topology.add_service(Service("c1", image="iperf"))
    topology.add_service(Service("sv", image="nginx", replicas=2))
    topology.add_bridge(Bridge("s1"))
    topology.add_bridge(Bridge("s2"))
    topology.add_link("c1", "s1",
                      LinkProperties(latency=0.010, bandwidth=10e6))
    topology.add_link("s1", "s2",
                      LinkProperties(latency=0.020, bandwidth=100e6))
    topology.add_link("sv", "s2",
                      LinkProperties(latency=0.005, bandwidth=50e6))
    return topology


class TestFigure1:
    def test_c1_to_server_collapses_to_10mbps_35ms(self):
        collapsed = collapse(figure1_topology())
        path = collapsed.require_path("c1", "sv.0")
        assert path.bandwidth == 10e6
        assert path.latency == pytest.approx(0.035)

    def test_server_to_server_collapses_to_50mbps_10ms(self):
        """Figure 1 (right): sv1 <-> sv2 is 50 Mb/s at 10 ms."""
        collapsed = collapse(figure1_topology())
        path = collapsed.require_path("sv.0", "sv.1")
        assert path.bandwidth == 50e6
        assert path.latency == pytest.approx(0.010)

    def test_all_ordered_pairs_present(self):
        collapsed = collapse(figure1_topology())
        # 3 containers -> 6 ordered pairs.
        assert collapsed.pair_count() == 6

    def test_rtt_is_forward_plus_reverse(self):
        collapsed = collapse(figure1_topology())
        assert collapsed.rtt("c1", "sv.1") == pytest.approx(0.070)

    def test_link_ids_recorded_along_path(self):
        topology = figure1_topology()
        collapsed = collapse(topology)
        path = collapsed.require_path("c1", "sv.0")
        ids = {link.link_id: link for link in topology.links()}
        sources = [ids[i].source for i in path.link_ids]
        assert sources == ["c1", "s1", "s2"]

    def test_node_path_lists_traversed_nodes(self):
        collapsed = collapse(figure1_topology())
        path = collapsed.require_path("c1", "sv.1")
        assert path.node_path == ("c1", "s1", "s2", "sv.1")


class TestShortestPathSelection:
    def two_path_topology(self, fast_latency, slow_latency):
        topology = Topology()
        topology.add_service(Service("a"))
        topology.add_service(Service("b"))
        topology.add_bridge(Bridge("fast"))
        topology.add_bridge(Bridge("slow"))
        topology.add_link("a", "fast", LinkProperties(latency=fast_latency,
                                                      bandwidth=1e6))
        topology.add_link("fast", "b", LinkProperties(latency=fast_latency,
                                                      bandwidth=1e6))
        topology.add_link("a", "slow", LinkProperties(latency=slow_latency,
                                                      bandwidth=100e6))
        topology.add_link("slow", "b", LinkProperties(latency=slow_latency,
                                                      bandwidth=100e6))
        return topology

    def test_lowest_latency_path_wins(self):
        """Multipath is discarded: the latency-shortest path is chosen (§6)."""
        collapsed = collapse(self.two_path_topology(0.001, 0.010))
        path = collapsed.require_path("a", "b")
        assert "fast" in path.node_path
        assert path.bandwidth == 1e6  # bandwidth of the chosen path only

    def test_tie_broken_by_hops_then_name(self):
        topology = self.two_path_topology(0.005, 0.005)
        collapsed = collapse(topology)
        path = collapsed.require_path("a", "b")
        # Equal latency and hops: lexicographically smaller bridge wins,
        # deterministically on every Emulation Manager.
        assert "fast" in path.node_path

    def test_unreachable_pairs_absent(self):
        topology = Topology()
        topology.add_service(Service("a"))
        topology.add_service(Service("b"))
        topology.add_bridge(Bridge("s"))
        topology.add_link("a", "s", LinkProperties())
        collapsed = collapse(topology)
        assert collapsed.path("a", "b") is None
        with pytest.raises(TopologyError):
            collapsed.require_path("a", "b")


class TestRestrictedSources:
    def test_sources_limits_computation(self):
        """Each EM only collapses paths from its local containers (§3)."""
        collapsed = collapse(figure1_topology(), sources=["c1"])
        assert collapsed.path("c1", "sv.0") is not None
        assert collapsed.path("sv.0", "c1") is None

    def test_restricted_matches_full(self):
        full = collapse(figure1_topology())
        restricted = collapse(figure1_topology(), sources=["c1"])
        full_path = full.require_path("c1", "sv.0")
        restricted_path = restricted.require_path("c1", "sv.0")
        assert full_path.link_ids == restricted_path.link_ids
        assert full_path.properties == restricted_path.properties


class TestDirectionality:
    def test_asymmetric_bandwidth_respected(self):
        topology = Topology()
        topology.add_service(Service("a"))
        topology.add_service(Service("b"))
        topology.add_bridge(Bridge("s"))
        topology.add_link("a", "s", LinkProperties(bandwidth=10e6),
                          down_properties=LinkProperties(bandwidth=1e6))
        topology.add_link("s", "b", LinkProperties(bandwidth=100e6))
        collapsed = collapse(topology)
        assert collapsed.require_path("a", "b").bandwidth == 10e6
        assert collapsed.require_path("b", "a").bandwidth == 1e6

    def test_unidirectional_link_gives_one_way_reachability(self):
        topology = Topology()
        topology.add_service(Service("a"))
        topology.add_service(Service("b"))
        topology.add_bridge(Bridge("s"))
        topology.add_link("a", "s", LinkProperties(), bidirectional=False)
        topology.add_link("s", "b", LinkProperties(), bidirectional=False)
        collapsed = collapse(topology)
        assert collapsed.path("a", "b") is not None
        assert collapsed.path("b", "a") is None


class TestScaleFreeDeterminism:
    def test_two_collapses_agree(self):
        """Decentralized requirement: independent collapses are identical."""
        from repro.topogen import scale_free_topology
        topology = scale_free_topology(total_nodes=60, seed=3)
        first = collapse(topology)
        second = collapse(topology.copy())
        for path in first.paths():
            other = second.require_path(path.source, path.destination)
            assert other.link_ids == path.link_ids
