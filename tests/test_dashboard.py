"""The textual dashboard renders engine state without crashing or lying."""

from repro.core import EmulationEngine, EngineConfig
from repro.dashboard import Dashboard
from repro.topogen import dumbbell_topology


def build():
    engine = EmulationEngine(dumbbell_topology(2),
                             config=EngineConfig(machines=2, seed=1))
    return engine, Dashboard(engine)


class TestDashboard:
    def test_render_topology_mentions_counts(self):
        engine, dashboard = build()
        text = dashboard.render_topology()
        assert "4 services" in text
        assert "2 bridges" in text

    def test_render_services_shows_placement(self):
        engine, dashboard = build()
        text = dashboard.render_services()
        assert "client0" in text
        assert "host-0" in text or "host-1" in text

    def test_render_flows_empty_then_active(self):
        engine, dashboard = build()
        assert "(none)" in dashboard.render_flows()
        engine.start_flow("f", "client0", "server0")
        engine.run(until=1.0)
        assert "client0->server0" in dashboard.render_flows()

    def test_render_metadata_lists_machines(self):
        engine, dashboard = build()
        text = dashboard.render_metadata()
        assert "host-0" in text and "host-1" in text

    def test_event_log_bounded(self):
        engine, dashboard = build()
        dashboard.log_limit = 10
        for index in range(50):
            dashboard.log(f"event {index}")
        assert len(dashboard.events) == 10
        assert "event 49" in dashboard.events[-1]

    def test_full_render_includes_events(self):
        engine, dashboard = build()
        dashboard.log("experiment started")
        text = dashboard.render()
        assert "experiment started" in text
        assert "metadata traffic" in text
