"""Tests for the campaign/fleet monitors in repro.dashboard.monitor.

Both monitors are duck-typed against their event shapes, so these tests
drive them with the real event dataclasses where convenient and with
bare namespaces where that proves the decoupling — no engine, no store,
no clock beyond the timestamps baked into the events.
"""

import io
from types import SimpleNamespace

import pytest

from repro.campaign.distributed.coordinator import FleetEvent
from repro.campaign.executor import CampaignEvent
from repro.campaign.grid import Point
from repro.dashboard.monitor import CampaignMonitor, FleetMonitor


def make_point(index=0, seed=1, label="kollaps_def"):
    return Point(campaign="fig5", index=index, params=(("flows", 4),),
                 seed=seed, backend="kollaps", label=label)


class TestCampaignMonitor:
    def test_start_events_are_not_outcomes(self):
        monitor = CampaignMonitor(total=4)
        monitor(CampaignEvent(kind="start", point=make_point()))
        assert monitor.done == 0
        assert monitor.counts == {"start": 1}

    def test_terminal_kinds_advance_done(self):
        monitor = CampaignMonitor(total=4)
        for kind in ("ok", "skip", "incompatible", "error"):
            monitor(CampaignEvent(kind=kind, point=make_point()))
        assert monitor.done == 4

    def test_feed_line_shape(self):
        stream = io.StringIO()
        monitor = CampaignMonitor(total=2, stream=stream)
        monitor(CampaignEvent(kind="ok", point=make_point(seed=7),
                              elapsed=1.25))
        line = stream.getvalue().strip()
        assert line.startswith("[1/2] ok")
        assert "seed=7" in line and "(1.25s)" in line

    def test_error_includes_first_error_line(self):
        monitor = CampaignMonitor(total=1)
        monitor(CampaignEvent(kind="error", point=make_point(),
                              error="RuntimeError: boom\n  trace..."))
        assert "RuntimeError: boom" in monitor.events[-1]
        assert "trace" not in monitor.events[-1]

    def test_render_bar_and_tallies(self):
        monitor = CampaignMonitor(total=4)
        monitor(CampaignEvent(kind="ok", point=make_point(), elapsed=0.5))
        monitor(CampaignEvent(kind="skip", point=make_point(index=1)))
        text = monitor.render(width=4)
        assert "campaign progress [##--] 2/4" in text
        assert "1 ok, 1 skip" in text
        assert "recent:" in text

    def test_render_unknown_total(self):
        monitor = CampaignMonitor()
        monitor(CampaignEvent(kind="ok", point=make_point(), elapsed=0.1))
        assert "/?" in monitor.render()

    def test_event_log_bounded(self):
        monitor = CampaignMonitor(total=100, log_limit=5)
        for index in range(20):
            monitor(CampaignEvent(kind="ok", point=make_point(index=index),
                                  elapsed=0.0))
        assert len(monitor.events) == 5

    def test_duck_typing_accepts_namespaces(self):
        monitor = CampaignMonitor(total=1)
        monitor(SimpleNamespace(kind="ok", point=None, error="",
                                elapsed=0.2, detail="cached"))
        assert monitor.done == 1
        assert "cached" in monitor.events[-1]


def worker_snapshot(points=4, busy=8.0, solver=2.0, collapse=1.0,
                    wait_count=2, wait_sum=1.0):
    """A heartbeat-shaped metrics snapshot like Worker.metrics produces."""
    return {
        "worker.points": {"type": "counter", "value": float(points)},
        "worker.busy_seconds": {"type": "counter", "value": busy},
        "worker.sharing.solver_seconds": {"type": "counter",
                                          "value": solver},
        "worker.collapse.seconds": {"type": "counter", "value": collapse},
        "worker.lease_wait_seconds": {
            "type": "histogram", "buckets": [1.0], "counts": [wait_count, 0],
            "count": wait_count, "sum": wait_sum,
            "min": 0.1, "max": 0.9},
    }


class TestFleetMonitor:
    def drive(self, monitor, *events):
        for event in events:
            monitor(event)
        return monitor

    def test_serve_sets_total(self):
        monitor = FleetMonitor()
        monitor(FleetEvent(kind="serve", time=0.0, count=12,
                           detail="campaigns/fig5"))
        assert monitor.total == 12

    def test_worker_lifecycle_rendering(self):
        monitor = self.drive(
            FleetMonitor(total=8),
            FleetEvent(kind="join", time=1.0, worker="w0", detail="host-a"),
            FleetEvent(kind="lease", time=2.0, worker="w0",
                       lease_id=1, count=4),
            FleetEvent(kind="heartbeat", time=3.0, worker="w0"))
        text = monitor.render()
        assert "w0 on host-a: live, lease #1 0/4" in text
        assert "heartbeat 0.0s ago" in text

    def test_expire_marks_suspect_heartbeat_revives(self):
        monitor = self.drive(
            FleetMonitor(total=8),
            FleetEvent(kind="join", time=1.0, worker="w0"),
            FleetEvent(kind="lease", time=1.5, worker="w0",
                       lease_id=1, count=4),
            FleetEvent(kind="expire", time=9.0, worker="w0", lease_id=1,
                       detail="no heartbeat for 7.5s"))
        assert monitor.workers["w0"]["status"] == "suspect"
        assert monitor.workers["w0"]["lease"] is None
        monitor(FleetEvent(kind="heartbeat", time=10.0, worker="w0"))
        assert monitor.workers["w0"]["status"] == "live"

    def test_merge_updates_progress_and_aggregates(self):
        monitor = self.drive(
            FleetMonitor(total=4),
            FleetEvent(kind="merge", time=2.0, worker="w0",
                       point=make_point(), status="ok", count=1,
                       rows=(("kollaps", "goodput", 10.0),)),
            FleetEvent(kind="merge", time=3.0, worker="w0",
                       point=make_point(index=1), status="ok", count=2,
                       rows=(("kollaps", "goodput", 20.0),)))
        assert monitor.completed == 2
        count, mean, delta = monitor.aggregates[("kollaps", "goodput")]
        assert count == 2
        assert mean == pytest.approx(15.0)
        assert delta == pytest.approx(5.0)     # 15 - 10 on the last merge
        text = monitor.render()
        assert "goodput@kollaps: mean 15 over 2 (+5 on last merge)" in text

    def test_merge_feed_line_streams(self):
        stream = io.StringIO()
        monitor = FleetMonitor(total=2, stream=stream)
        monitor(FleetEvent(kind="merge", time=1.0, worker="w1",
                           point=make_point(), status="ok", count=1,
                           rows=(("kollaps", "goodput", 5.0),)))
        line = stream.getvalue().strip()
        assert line.startswith("[1/2] ok")
        assert "via w1" in line and "goodput@kollaps mean 5" in line

    def test_no_telemetry_pane_without_metrics(self):
        monitor = self.drive(
            FleetMonitor(total=4),
            FleetEvent(kind="join", time=0.0, worker="w0"))
        assert monitor.worker_telemetry("w0") is None
        assert "telemetry:" not in monitor.render()
        assert "(no worker metrics yet)" in monitor.render_telemetry()

    def test_heartbeat_metrics_populate_telemetry(self):
        monitor = self.drive(
            FleetMonitor(total=8),
            FleetEvent(kind="join", time=0.0, worker="w0"),
            FleetEvent(kind="heartbeat", time=10.0, worker="w0",
                       metrics=worker_snapshot()))
        stats = monitor.worker_telemetry("w0")
        assert stats["points"] == 4.0
        assert stats["rate"] == pytest.approx(0.4)       # 4 pts / 10 s
        assert stats["busy"] == 8.0
        assert stats["solver_share"] == pytest.approx(0.25)
        assert stats["collapse_share"] == pytest.approx(0.125)
        assert stats["lease_wait_mean"] == pytest.approx(0.5)

    def test_telemetry_pane_renders_rates_and_breakdown(self):
        monitor = self.drive(
            FleetMonitor(total=8),
            FleetEvent(kind="join", time=0.0, worker="w0"),
            FleetEvent(kind="heartbeat", time=10.0, worker="w0",
                       metrics=worker_snapshot()))
        text = monitor.render()
        assert "telemetry:" in text
        assert "w0: 4 points (0.40/s)" in text
        assert "solver 25% collapse 12% of 8.00s busy" in text
        assert "lease wait 0.50s" in text

    def test_later_heartbeat_replaces_snapshot(self):
        monitor = self.drive(
            FleetMonitor(total=8),
            FleetEvent(kind="join", time=0.0, worker="w0"),
            FleetEvent(kind="heartbeat", time=5.0, worker="w0",
                       metrics=worker_snapshot(points=2)),
            FleetEvent(kind="heartbeat", time=10.0, worker="w0",
                       metrics=worker_snapshot(points=6)))
        assert monitor.worker_telemetry("w0")["points"] == 6.0

    def test_untraced_worker_shows_zero_shares(self):
        snapshot = {"worker.points": {"type": "counter", "value": 3.0}}
        monitor = self.drive(
            FleetMonitor(total=8),
            FleetEvent(kind="join", time=0.0, worker="w0"),
            FleetEvent(kind="heartbeat", time=6.0, worker="w0",
                       metrics=snapshot))
        stats = monitor.worker_telemetry("w0")
        assert stats["solver_share"] == 0.0
        assert stats["collapse_share"] == 0.0
        assert stats["lease_wait_mean"] == 0.0

    def test_duck_typed_heartbeat_without_metrics_attribute(self):
        # FleetMonitor docs promise duck-typing: an event object lacking
        # the newer ``metrics`` field must still be ingestible.
        monitor = FleetMonitor(total=2)
        monitor(SimpleNamespace(kind="join", time=0.0, worker="w0",
                                detail=""))
        monitor(SimpleNamespace(kind="heartbeat", time=1.0, worker="w0"))
        assert monitor.workers["w0"]["metrics"] is None

    def test_done_event_in_feed(self):
        stream = io.StringIO()
        monitor = FleetMonitor(total=3, stream=stream)
        monitor(FleetEvent(kind="done", time=4.0, count=3))
        assert "fleet done: 3 points in the store" in stream.getvalue()
