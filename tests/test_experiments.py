"""Tests for the experiment harness (registry, results, reporting)."""

import pytest

from repro.experiments import (
    Check,
    ExperimentResult,
    format_table,
    get_runner,
    registered,
    render_markdown,
)
from repro.experiments.base import _ORDER


def sample_result(passed: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="fig0",
        title="A sample experiment",
        paper_claim="The paper claims X beats Y by 2x.",
        headers=["config", "value"],
        rows=[("a", "1.0"), ("b", "2.0")])
    result.check("first shape check", True)
    result.check("second shape check", passed)
    return result


class TestExperimentResult:
    def test_check_recording(self):
        result = sample_result()
        assert len(result.checks) == 2
        assert result.passed()
        assert result.failures() == []

    def test_failures_listed(self):
        result = sample_result(passed=False)
        assert not result.passed()
        assert [check.description for check in result.failures()] == \
            ["second shape check"]

    def test_assert_all_raises_with_context(self):
        result = sample_result(passed=False)
        with pytest.raises(AssertionError, match="fig0: second shape check"):
            result.assert_all()

    def test_assert_all_passes_silently(self):
        sample_result().assert_all()

    def test_check_str(self):
        assert str(Check("thing holds", True)) == "[PASS] thing holds"
        assert str(Check("thing holds", False)) == "[FAIL] thing holds"


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        ids = registered()
        for expected in _ORDER:
            assert expected in ids, expected

    def test_paper_order_preserved(self):
        ids = registered()
        positions = [ids.index(exp_id) for exp_id in _ORDER]
        assert positions == sorted(positions)

    def test_get_runner_known(self):
        runner = get_runner("fig8")
        assert callable(runner)

    def test_get_runner_unknown(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_runner("fig99")


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(sample_result())
        lines = text.splitlines()
        assert lines[0].startswith("=== A sample experiment")
        assert "config" in lines[1] and "value" in lines[1]
        assert set(lines[2]) == {"-"}
        assert lines[3].startswith("a")

    def test_render_markdown_summary(self):
        text = render_markdown([sample_result()])
        assert "| fig0 | A sample experiment | 2/2 | reproduced |" in text
        assert "**Paper:** The paper claims X beats Y by 2x." in text
        assert "- [x] first shape check" in text

    def test_render_markdown_failure_verdict(self):
        text = render_markdown([sample_result(passed=False)])
        assert "| 1/2 | NOT reproduced |" in text
        assert "- [ ] second shape check" in text

    def test_render_markdown_notes(self):
        result = sample_result()
        result.notes = "Sizes were scaled down 4x."
        text = render_markdown([result])
        assert "**Notes:** Sizes were scaled down 4x." in text

    def test_markdown_table_shape(self):
        text = render_markdown([sample_result()])
        assert "| config | value |" in text
        assert "| a | 1.0 |" in text


class TestRunnersSmoke:
    """One fast runner end-to-end: registry -> result -> checks."""

    def test_fig8_quick_reproduces(self):
        result = get_runner("fig8")(quick=True)
        assert result.exp_id == "fig8"
        assert result.rows
        result.assert_all()

    def test_fig3_quick_reproduces(self):
        result = get_runner("fig3")(quick=True)
        result.assert_all()
        # The decentralization claim is visible in the quick run too.
        assert any("zero network metadata" in check.description
                   for check in result.checks)
