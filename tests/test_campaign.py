"""Tests for the campaign subsystem: grid, executor, store, aggregate, CLI.

The acceptance contract: a >=24-point grid (2 backends x 3 seeds x
4 parameters) run with ``jobs=4`` produces the byte-identical aggregate
of a serial run, and a campaign interrupted mid-sweep re-executes only
the missing points on resume.
"""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.campaign import (
    Campaign,
    CampaignError,
    CampaignEvent,
    Point,
    ResultStore,
    load_campaign,
)
from repro.dashboard import CampaignMonitor
from repro.scenario import Scenario, ScenarioRun, flow, ping
from repro.scenario.results import series_summary

RATES = [1e6, 2e6, 4e6, 8e6]


# --------------------------------------------------------------------------
# Factories (module-level: worker processes pickle them by reference).
# --------------------------------------------------------------------------
def pair(*, rate, seed=0):
    return (Scenario.build("pair")
            .service("a").service("b").bridge("s")
            .link("a", "s", latency="1ms", up=rate)
            .link("s", "b", latency="1ms", up=rate)
            .workload(flow("a", "b", key="bulk"))
            .deploy(machines=2, seed=seed, duration=2.0))


def flaky(*, rate, seed=0):
    if rate == 0:
        raise RuntimeError("this grid cell is broken")
    return pair(rate=rate, seed=seed)


def pinger(*, rate, seed=0):
    return (Scenario.build("pinger")
            .service("a").service("b")
            .link("a", "b", latency="1ms", up=rate)
            .workload(ping("a", "b", count=3, interval=0.05, key="p"))
            .deploy(seed=seed, duration=2.0))


def compiled_fixed_seed(*, rate):
    """Returns a *compiled* scenario and takes no seed parameter."""
    return pair(rate=rate).compile()


def kwargs_swallower(**kwargs):
    """Would swallow seed= via **kwargs while ignoring it entirely."""
    return pair(rate=kwargs["rate"])


def tuple_keyed(*, rate, seed=0):
    return (Scenario.build("tk")
            .service("a").service("b")
            .link("a", "b", latency="1ms", up=rate)
            .workload(flow("a", "b", key=("a", "b")))
            .deploy(seed=seed, duration=2.0))


_INTERRUPT = {"after": None}


def interruptible(*, rate, seed=0):
    remaining = _INTERRUPT["after"]
    if remaining is not None:
        if remaining <= 0:
            raise KeyboardInterrupt
        _INTERRUPT["after"] = remaining - 1
    return pair(rate=rate, seed=seed)


def sweep(factory=pair, name="sweep") -> Campaign:
    """The acceptance grid: 4 rates x 3 seeds x 2 backends = 24 points."""
    return (Campaign(name)
            .scenario(factory)
            .grid(rate=RATES)
            .seeds(3)
            .backends("kollaps", "baremetal"))


def probing_run() -> ScenarioRun:
    return (Scenario.build("probe")
            .service("c").service("s")
            .link("c", "s", latency="2ms", up="5Mbps")
            .workload(ping("c", "s", count=10, interval=0.05, key="p"),
                      flow("c", "s", key="f"))
            .deploy(seed=7, duration=3.0)
            .compile().run())


# --------------------------------------------------------------------------
# Grid expansion.
# --------------------------------------------------------------------------
class TestGrid:
    def test_expansion_count_and_order(self):
        points = sweep().points()
        assert len(points) == 24
        assert [point.index for point in points] == list(range(24))
        # First axis varies slowest, backends fastest.
        assert points[0].params == (("rate", RATES[0]),)
        assert (points[0].label, points[1].label) == ("kollaps", "baremetal")
        assert points[0].seed == points[1].seed == 0
        assert points[2].seed == 0 or points[2].seed == 1
        assert points[6].params == (("rate", RATES[1]),)

    def test_digest_is_content_not_position(self):
        forward = sweep().points()
        reversed_grid = (Campaign("sweep").scenario(pair)
                         .grid(rate=list(reversed(RATES))).seeds(3)
                         .backends("kollaps", "baremetal")).points()
        assert ({point.digest() for point in forward}
                == {point.digest() for point in reversed_grid})
        by_digest = {point.digest(): point for point in forward}
        for point in reversed_grid:
            twin = by_digest[point.digest()]
            assert twin.params == point.params
            assert twin.seed == point.seed
            assert twin.label == point.label

    def test_duplicate_backend_without_alias_rejected(self):
        campaign = (Campaign("dup").scenario(pair).grid(rate=[1e6])
                    .backend("trickle").backend("trickle"))
        with pytest.raises(CampaignError, match="labels must disambiguate"):
            campaign.points()

    def test_seeds_int_and_iterable(self):
        assert (Campaign("s").scenario(pair).seeds(3)._seeds
                == [0, 1, 2])
        assert (Campaign("s").scenario(pair).seeds([61])._seeds == [61])
        with pytest.raises(CampaignError):
            Campaign("s").seeds(0)

    def test_scalar_grid_value_becomes_axis(self):
        points = (Campaign("s").scenario(pair)
                  .grid(rate=5e6).points())
        assert len(points) == 1
        assert points[0].params == (("rate", 5e6),)

    def test_exclude_drops_cells_and_reindexes(self):
        campaign = sweep().exclude(
            lambda point: point.label == "baremetal"
            and point.params_dict()["rate"] == RATES[0])
        points = campaign.points()
        assert len(points) == 21
        assert [point.index for point in points] == list(range(21))

    def test_point_round_trips_through_json(self):
        point = sweep().points()[5]
        clone = Point.from_dict(json.loads(json.dumps(point.to_dict())))
        assert clone == point
        assert clone.digest() == point.digest()

    def test_reserved_axis_names_rejected(self):
        with pytest.raises(CampaignError, match="reserved"):
            Campaign("bad").scenario(pair).grid(workload=["a"])
        with pytest.raises(CampaignError, match="backend, seed"):
            Campaign("bad").scenario(pair).grid(seed=[1], backend=["x"])

    def test_until_is_part_of_point_identity(self, tmp_path):
        short = (Campaign("horizon").scenario(pair).grid(rate=[1e6])
                 .backends("kollaps").until(1.0))
        long = (Campaign("horizon").scenario(pair).grid(rate=[1e6])
                .backends("kollaps").until(9.0))
        assert short.points()[0].digest() != long.points()[0].digest()
        # Changing the horizon therefore re-executes rather than resuming.
        store = str(tmp_path)
        short.run(jobs=1, store=store)
        rerun = long.run(jobs=1, store=store)
        assert rerun.skipped == 0

    def test_factory_required(self):
        with pytest.raises(CampaignError, match="no scenario factory"):
            Campaign("empty").points()

    def test_campaign_name_must_be_plain(self):
        with pytest.raises(CampaignError):
            Campaign("a/b")


# --------------------------------------------------------------------------
# Execution: serial, parallel, failure capture.
# --------------------------------------------------------------------------
class TestExecution:
    def test_serial_run_provenance(self):
        result = (Campaign("one").scenario(pair).grid(rate=[1e6])
                  .seeds([4]).backends("kollaps").run(jobs=1))
        assert len(result) == 1 and result.results[0].ok
        run = result.results[0].run
        assert run.seed == 4
        assert run.machines == 2
        assert run.backend == "kollaps"
        assert dict(run.params) == {"rate": 1e6}
        assert run.to_dict()["seed"] == 4

    def test_parallel_matches_serial_byte_identically(self):
        serial = sweep().run(jobs=1)
        parallel = sweep().run(jobs=4)
        assert len(serial) == len(parallel) == 24
        assert not serial.failed() and not parallel.failed()
        serial_aggregate = serial.aggregate()
        parallel_aggregate = parallel.aggregate()
        assert serial_aggregate.to_csv() == parallel_aggregate.to_csv()
        assert (serial_aggregate.to_markdown()
                == parallel_aggregate.to_markdown())
        assert (serial_aggregate.to_csv(serial_aggregate.compare("baremetal"))
                == parallel_aggregate.to_csv(
                    parallel_aggregate.compare("baremetal")))

    def test_crashed_point_never_kills_the_sweep(self):
        result = (Campaign("flaky").scenario(flaky)
                  .grid(rate=[0, 1e6]).backends("kollaps").run(jobs=1))
        assert len(result) == 2
        (broken,) = result.failed()
        assert "this grid cell is broken" in broken.error
        assert len(result.ok()) == 1

    def test_incompatible_backend_is_captured_not_raised(self):
        result = (Campaign("na").scenario(pinger).grid(rate=[1e6])
                  .backends("kollaps", "trickle").run(jobs=1))
        assert len(result.ok()) == 1
        (cell,) = result.incompatible()
        assert cell.point.label == "trickle"
        assert "packet plane" in cell.error

    def test_compiled_factory_without_seed_parameter(self):
        result = (Campaign("fixed").scenario(compiled_fixed_seed)
                  .grid(rate=[1e6]).seeds(2).backends("kollaps").run(jobs=1))
        # Seed 0 matches the compiled config; seed 1 cannot be applied.
        by_seed = {cell.point.seed: cell for cell in result}
        assert by_seed[0].ok
        assert by_seed[1].status == "error"
        assert "'seed'" in by_seed[1].error

    def test_run_for_and_selectors(self):
        result = sweep().run(jobs=1)
        run = result.run_for(rate=RATES[1], seed=2, backend="baremetal")
        assert run.backend == "baremetal"
        assert dict(run.params) == {"rate": RATES[1]}
        with pytest.raises(CampaignError, match="matches"):
            result.run_for(rate=RATES[1])        # ambiguous
        with pytest.raises(CampaignError, match="no point"):
            result.run_for(rate=123.0, seed=0, backend="kollaps")
        with pytest.raises(CampaignError, match="unknown grid parameter"):
            result.run_for(rats=RATES[1], seed=0, backend="kollaps")

    def test_kwargs_only_factory_still_gets_distinct_seeds(self):
        result = (Campaign("kw").scenario(kwargs_swallower)
                  .grid(rate=[1e6]).seeds(2).backends("kollaps").run(jobs=1))
        assert not result.failed()
        seeds = {cell.run.seed for cell in result.ok()}
        assert seeds == {0, 1}       # deploy(seed=...) applied, not swallowed

    def test_factory_ref_survives_a_fresh_process_state(self, tmp_path):
        """Spawn-started workers cannot import a path-loaded campaign
        module by name; the executor ships a (module, path, qualname)
        reference instead, resolvable from a clean sys.modules."""
        import sys
        from repro.campaign.executor import factory_ref, resolve_factory
        path = tmp_path / "ref_campaign.py"
        path.write_text(CAMPAIGN_MODULE)
        campaign = load_campaign(str(path))
        factory = campaign._factory
        ref = factory_ref(factory)
        assert ref is not None           # synthetic module: needs the path
        module_name, ref_path, qualname = ref
        assert ref_path == str(path) and qualname == "factory"
        sys.modules.pop(module_name, None)      # a spawn child's view
        resolved = resolve_factory(None, ref)
        assert resolved is not factory and callable(resolved)
        assert resolved(rate=1e6).compile().name == "cli-sweep"

    def test_factory_ref_not_needed_for_importable_modules(self):
        from repro.campaign.executor import factory_ref
        assert factory_ref(pair) is None  # picklable by reference

    def test_unpicklable_factory_falls_back_to_serial(self):
        events = []

        def local_factory(*, rate, seed=0):       # closure: not picklable
            return pair(rate=rate, seed=seed)

        result = (Campaign("local").scenario(local_factory)
                  .grid(rate=[1e6, 2e6]).backends("kollaps")
                  .run(jobs=4, progress=events.append))
        assert not result.failed()
        assert any(event.kind == "fallback" for event in events)


# --------------------------------------------------------------------------
# Store: resume, interruption, corruption, supersession.
# --------------------------------------------------------------------------
class TestStoreResume:
    def test_resume_skips_everything_completed(self, tmp_path):
        store = str(tmp_path)
        first = sweep().run(jobs=1, store=store)
        assert first.skipped == 0
        again = sweep().run(jobs=1, store=store)
        assert again.skipped == 24
        assert (first.aggregate().to_csv() == again.aggregate().to_csv())

    def test_interrupted_campaign_resumes_exactly(self, tmp_path):
        store_root = str(tmp_path)
        _INTERRUPT["after"] = 7
        try:
            with pytest.raises(KeyboardInterrupt):
                (Campaign("sweep").scenario(interruptible).grid(rate=RATES)
                 .seeds(3).backends("kollaps", "baremetal")
                 .run(jobs=1, store=store_root))
        finally:
            _INTERRUPT["after"] = None
        store = ResultStore(os.path.join(store_root, "sweep"))
        completed = len(store.load())
        assert 0 < completed < 24
        resumed = (Campaign("sweep").scenario(interruptible).grid(rate=RATES)
                   .seeds(3).backends("kollaps", "baremetal")
                   .run(jobs=1, store=store_root))
        assert resumed.skipped == completed
        assert len(resumed) == 24 and not resumed.failed()
        # Byte-identical with a sweep that never saw an interruption.
        clean = sweep().run(jobs=1)
        assert resumed.aggregate().to_csv() == clean.aggregate().to_csv()

    def test_half_written_trailing_line_is_ignored(self, tmp_path):
        store_root = str(tmp_path)
        result = sweep().run(jobs=1, store=store_root)
        path = os.path.join(store_root, "sweep", "results.jsonl")
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:-1])
            handle.write(lines[-1][:len(lines[-1]) // 2])   # the kill victim
        resumed = sweep().run(jobs=1, store=store_root)
        assert resumed.skipped == 23
        assert resumed.aggregate().to_csv() == result.aggregate().to_csv()

    def test_fresh_run_supersedes_last_wins(self, tmp_path):
        store = ResultStore(str(tmp_path / "c"))
        store.append({"hash": "h1", "status": "error", "error": "old"})
        store.append({"hash": "h1", "status": "ok", "run": None})
        assert store.load()["h1"]["status"] == "ok"

    def test_error_points_are_retried_on_resume(self, tmp_path):
        store = ResultStore(str(tmp_path / "c"))
        store.append({"hash": "h1", "status": "error", "error": "boom"})
        store.append({"hash": "h2", "status": "incompatible", "error": "na"})
        store.append({"hash": "h3", "status": "ok", "run": None})
        assert set(store.completed()) == {"h2", "h3"}

    def test_non_json_axis_values_store_and_resume(self, tmp_path):
        """Any grid value the digest accepted must also store: the JSONL
        writer falls back to repr exactly like the hash's canonical JSON,
        and resume keys on the precomputed hash."""
        store = str(tmp_path)
        campaign = (Campaign("odd").scenario(kwargs_swallower)
                    .grid(rate=[1e6], tag=[frozenset({1})])
                    .backends("kollaps"))
        first = campaign.run(jobs=1, store=store)
        assert not first.failed()
        again = (Campaign("odd").scenario(kwargs_swallower)
                 .grid(rate=[1e6], tag=[frozenset({1})])
                 .backends("kollaps").run(jobs=1, store=store))
        assert again.skipped == 1

    def test_status_counts_and_orphans(self, tmp_path):
        store_root = str(tmp_path)
        campaign = sweep()
        campaign.run(jobs=1, store=store_root)
        store = ResultStore(os.path.join(store_root, "sweep"))
        counts = store.status_counts(campaign.points())
        assert counts["ok"] == 24 and counts["missing"] == 0
        shrunk = (Campaign("sweep").scenario(pair).grid(rate=RATES[:2])
                  .seeds(3).backends("kollaps", "baremetal"))
        assert len(store.orphans(shrunk.points())) == 12
        assert store.manifest()["name"] == "sweep"


# --------------------------------------------------------------------------
# Aggregation.
# --------------------------------------------------------------------------
class TestAggregate:
    def test_rows_group_and_summary(self):
        aggregate = sweep().run(jobs=1).aggregate()
        rows = aggregate.rows()
        assert len(rows) == 24
        groups = aggregate.group("backend", "rate")
        assert len(groups) == 8          # 2 backends x 4 rates
        assert all(len(bucket) == 3 for bucket in groups.values())
        summary = aggregate.summary(by=("backend", "rate"))
        assert len(summary) == 8
        cell = summary[0]
        assert {"mean", "min", "max", "count"} <= set(cell)
        assert cell["count"] == 3

    def test_group_unknown_column_lists_available(self):
        aggregate = sweep().run(jobs=1).aggregate()
        with pytest.raises(KeyError, match="available"):
            aggregate.group("nope")

    def test_compare_against_baseline(self):
        aggregate = sweep().run(jobs=1).aggregate()
        deltas = aggregate.compare("baremetal")
        assert len(deltas) == 12         # 4 rates x 3 seeds, kollaps only
        assert all(row["backend"] == "kollaps" for row in deltas)
        assert all("deviation" in row for row in deltas)

    def test_compare_spans_live_and_reconstructed_runs(self, tmp_path):
        """A resumed sweep mixes store-reconstructed runs (stringified
        workload keys) with live ones (original tuple keys); compare()
        must still match every workload across the two forms."""
        store = str(tmp_path)
        (Campaign("mixed").scenario(tuple_keyed).grid(rate=[1e6])
         .backends("baremetal").run(jobs=1, store=store))
        result = (Campaign("mixed").scenario(tuple_keyed).grid(rate=[1e6])
                  .backends("kollaps", "baremetal").run(jobs=1, store=store))
        assert result.skipped == 1       # baremetal came back from the store
        (delta,) = result.aggregate().compare("baremetal")
        assert delta["backend"] == "kollaps"
        assert delta["workload"] == str(("a", "b"))

    def test_failures_table(self):
        aggregate = (Campaign("flaky").scenario(flaky).grid(rate=[0, 1e6])
                     .backends("kollaps").run(jobs=1).aggregate())
        (failure,) = aggregate.failures()
        assert failure["status"] == "error"
        assert "broken" in failure["error"]


# --------------------------------------------------------------------------
# Results round-trips (satellite coverage).
# --------------------------------------------------------------------------
class TestResultsRoundTrips:
    def test_scenario_run_dict_round_trip_is_identity(self):
        run = probing_run()
        payload = json.loads(json.dumps(run.to_dict()))
        clone = ScenarioRun.from_dict(payload)
        assert clone.to_dict() == run.to_dict()
        assert clone.seed == run.seed == 7
        assert clone.machines == run.machines
        assert clone.metric("p").summary == dict(run.metric("p").summary)

    def test_run_comparison_to_dict_round_trips(self):
        run = probing_run()
        comparison = run.compare(run)
        payload = json.loads(json.dumps(comparison.to_dict()))
        assert payload["baseline"] == payload["other"] == "kollaps"
        for key, record in payload["workloads"].items():
            delta = comparison[key]
            assert record["baseline"] == delta.baseline
            assert record["other"] == delta.other
            assert record["delta"] == delta.delta
            assert record["relative"] == delta.relative

    def test_to_csv_round_trips_summaries_and_series(self):
        run = probing_run()
        summaries: dict = {}
        series: dict = {}
        lines = run.to_csv().splitlines()
        assert lines[0] == "workload,series,time,value"
        for line in lines[1:]:
            workload, column, time, value = line.split(",")
            if column.startswith("summary."):
                summaries.setdefault(workload, {})[
                    column[len("summary."):]] = float(value)
            else:
                series.setdefault((workload, column), []).append(
                    (float(time), float(value)))
        for key in ("p", "f"):
            metrics = run.metric(key)
            for stat, value in metrics.summary.items():
                assert summaries[key][stat] == value     # repr round-trip
            assert summaries[key]["drops"] == metrics.drops
            if metrics.latency:
                assert series[(key, "latency")] == list(metrics.latency)
            if metrics.throughput:
                assert series[(key, "throughput")] == \
                    list(metrics.throughput)

    def test_series_summary_empty_names_the_workload(self):
        with pytest.raises(ValueError, match="workload 'wrk2'"):
            series_summary((), workload="wrk2")
        with pytest.raises(ValueError, match="unnamed"):
            series_summary(())

    def test_series_summary_stats(self):
        summary = series_summary(((0.0, 1.0), (1.0, 3.0)), workload="w")
        assert summary == {"mean": 2.0, "min": 1.0, "max": 3.0,
                           "samples": 2.0}


# --------------------------------------------------------------------------
# Experiments expose campaigns.
# --------------------------------------------------------------------------
class TestExperimentCampaigns:
    def test_fig5_campaign_grid(self):
        from repro.experiments import as_campaign
        campaign = as_campaign("fig5")
        points = campaign.points()
        assert len(points) == 9          # 3 workloads x 3 systems
        assert all(point.seed == 61 for point in points)

    def test_fig6_campaign_grid(self):
        from repro.experiments import as_campaign
        campaign = as_campaign("fig6")
        points = campaign.points()
        assert len(points) == 12         # 4 client counts x 3 systems
        assert all(point.seed == 71 for point in points)

    def test_fig6_aggregate_matches_golden(self):
        from pathlib import Path

        from repro.experiments.fig6 import campaign
        sweep = campaign(6.0).run(jobs=1)
        golden = Path(__file__).parent / "golden" / "fig6_aggregate.md"
        assert sweep.aggregate().to_markdown() == golden.read_text()

    def test_table2_campaign_has_labelled_trickle_variants(self):
        from repro.experiments import as_campaign
        labels = {point.label for point in as_campaign("table2").points()}
        assert {"kollaps", "mininet", "trickle_default",
                "trickle_tuned"} == labels

    def test_table4_campaign_excludes_maxinet_beyond_paper(self):
        from repro.experiments import as_campaign
        points = as_campaign("table4").points()
        assert len(points) == 8          # 3 sizes x 3 systems - 1 excluded
        assert not any(point.label == "maxinet"
                       and point.params_dict()["size"] == 1000
                       for point in points)

    def test_unknown_campaign_lists_available(self):
        from repro.experiments import as_campaign
        with pytest.raises(KeyError, match="fig5"):
            as_campaign("fig99")


# --------------------------------------------------------------------------
# The dashboard progress feed.
# --------------------------------------------------------------------------
class TestCampaignMonitor:
    def test_counts_render_and_stream(self):
        point = sweep().points()[0]
        stream = io.StringIO()
        monitor = CampaignMonitor(total=3, stream=stream)
        monitor(CampaignEvent(kind="start", point=point))
        monitor(CampaignEvent(kind="ok", point=point, elapsed=0.5))
        monitor(CampaignEvent(kind="skip", point=point))
        monitor(CampaignEvent(kind="error", point=point,
                              error="RuntimeError: boom\ntrace"))
        assert monitor.done == 3
        feed = stream.getvalue()
        assert "[1/3] ok" in feed
        assert "RuntimeError: boom" in feed and "trace" not in feed
        pane = monitor.render()
        assert "3/3" in pane
        assert "1 ok, 1 skip" in pane

    def test_monitor_drives_from_real_campaign(self):
        monitor = CampaignMonitor(total=2)
        (Campaign("mon").scenario(pair).grid(rate=[1e6, 2e6])
         .backends("kollaps").run(jobs=1, progress=monitor))
        assert monitor.done == 2
        assert monitor.counts.get("ok") == 2


# --------------------------------------------------------------------------
# Loading campaign sources (the CLI's entry path).
# --------------------------------------------------------------------------
CAMPAIGN_MODULE = """\
from repro.campaign import Campaign
from repro.scenario import Scenario, flow


def factory(*, rate, seed=0):
    return (Scenario.build("cli-sweep")
            .service("a").service("b")
            .link("a", "b", latency="1ms", up=rate)
            .workload(flow("a", "b", key="f"))
            .deploy(seed=seed, duration=2.0))


CAMPAIGN = (Campaign("cli-sweep")
            .scenario(factory)
            .grid(rate=[1e6, 2e6])
            .seeds(2)
            .backends("kollaps"))
"""


@pytest.fixture
def campaign_file(tmp_path):
    path = tmp_path / "mini_campaign.py"
    path.write_text(CAMPAIGN_MODULE)
    return str(path)


class TestLoadCampaign:
    def test_loads_python_module(self, campaign_file):
        campaign = load_campaign(campaign_file)
        assert campaign.name == "cli-sweep"
        assert len(campaign.points()) == 4

    def test_module_without_campaign_rejected(self, tmp_path):
        path = tmp_path / "empty.py"
        path.write_text("x = 1\n")
        with pytest.raises(CampaignError, match="CAMPAIGN"):
            load_campaign(str(path))

    def test_loaded_factory_survives_worker_processes(self, campaign_file,
                                                      tmp_path):
        result = load_campaign(campaign_file).run(
            jobs=2, store=str(tmp_path / "campaigns"))
        assert len(result) == 4 and not result.failed()


class TestCampaignCli:
    def test_run_status_report(self, campaign_file, tmp_path, capsys):
        from repro.cli import main
        store = str(tmp_path / "campaigns")
        assert main(["campaign", "run", campaign_file, "--store", store,
                     "--jobs", "2", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "4 points" in out and "4 ok" in out
        assert os.path.exists(os.path.join(store, "cli-sweep",
                                           "results.jsonl"))

        assert main(["campaign", "status", campaign_file,
                     "--store", store]) == 0
        out = capsys.readouterr().out
        assert "ok: 4/4" in out and "missing: 0/4" in out

        assert main(["campaign", "report", campaign_file,
                     "--store", store]) == 0
        out = capsys.readouterr().out
        assert "## Summary" in out and "throughput_mean" in out

        assert main(["campaign", "report", campaign_file, "--store", store,
                     "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "rate,seed,backend,workload,metric,value"

    def test_resume_skips_and_fresh_reruns(self, campaign_file, tmp_path,
                                           capsys):
        from repro.cli import main
        store = str(tmp_path / "campaigns")
        assert main(["campaign", "run", campaign_file, "--store", store,
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["campaign", "run", campaign_file, "--store", store,
                     "--quiet"]) == 0
        assert "4 resumed from store" in capsys.readouterr().out
        assert main(["campaign", "run", campaign_file, "--store", store,
                     "--fresh", "--quiet"]) == 0
        assert "resumed from store" not in capsys.readouterr().out

    def test_csv_report_with_baseline_is_one_table(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "two_backends.py"
        path.write_text(CAMPAIGN_MODULE.replace(
            '.backends("kollaps")', '.backends("kollaps", "baremetal")'))
        store = str(tmp_path / "campaigns")
        assert main(["campaign", "run", str(path), "--store", store,
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["campaign", "report", str(path), "--store", store,
                     "--format", "csv", "--baseline", "baremetal"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        header = lines[0].split(",")
        assert "deviation" in header and "baseline" in header
        # One table: every following line is a data row of that header.
        assert all(len(line.split(",")) == len(header)
                   for line in lines[1:])

    def test_report_unknown_baseline_fails_cleanly(self, campaign_file,
                                                   tmp_path, capsys):
        from repro.cli import main
        store = str(tmp_path / "campaigns")
        assert main(["campaign", "run", campaign_file, "--store", store,
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["campaign", "report", campaign_file, "--store", store,
                     "--baseline", "ns3"]) == 1
        err = capsys.readouterr().err
        assert "ns3" in err and "kollaps" in err

    def test_report_without_results_fails_cleanly(self, campaign_file,
                                                  tmp_path, capsys):
        from repro.cli import main
        assert main(["campaign", "report", campaign_file,
                     "--store", str(tmp_path / "nowhere")]) == 1
        assert "no stored results" in capsys.readouterr().err

    def test_unknown_source_fails_cleanly(self, capsys):
        from repro.cli import main
        assert main(["campaign", "status", "fig99"]) == 1
        err = capsys.readouterr().err
        assert "fig99" in err and "fig5" in err
