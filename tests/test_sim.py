"""Discrete-event kernel: ordering, cancellation, processes, RNG streams."""

import pytest

from repro.sim import Process, RngRegistry, SimError, Simulator


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.at(3.0, lambda: order.append("c"))
        sim.at(1.0, lambda: order.append("a"))
        sim.at(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        order = []
        for tag in "abcde":
            sim.at(1.0, lambda tag=tag: order.append(tag))
        sim.run()
        assert order == list("abcde")

    def test_priority_breaks_ties(self):
        sim = Simulator()
        order = []
        sim.at(1.0, lambda: order.append("low"), priority=5)
        sim.at(1.0, lambda: order.append("high"), priority=-5)
        sim.run()
        assert order == ["high", "low"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.at(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.at(1.0, lambda: fired.append(1))
        sim.at(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run(until=10.0)
        assert fired == [1, 5]

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        seen = []

        def first():
            sim.after(1.0, lambda: seen.append("second"))

        sim.at(1.0, first)
        sim.run()
        assert seen == ["second"]

    def test_cancelled_event_skipped(self):
        sim = Simulator()
        seen = []
        event = sim.at(1.0, lambda: seen.append("x"))
        event.cancel()
        sim.run()
        assert seen == []

    def test_scheduling_in_past_raises(self):
        sim = Simulator()
        sim.at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimError):
            sim.at(1.0, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(SimError):
            Simulator().after(-1.0, lambda: None)

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert sim.step() is False
        sim.at(1.0, lambda: None)
        assert sim.step() is True
        assert sim.step() is False

    def test_pending_counts_live_events(self):
        sim = Simulator()
        event = sim.at(1.0, lambda: None)
        sim.at(2.0, lambda: None)
        assert sim.pending() == 2
        event.cancel()
        assert sim.pending() == 1


class TestProcess:
    def test_periodic_ticks(self):
        sim = Simulator()
        times = []
        process = Process(sim, period=1.0, tick=lambda: times.append(sim.now))
        sim.run(until=3.5)
        process.stop()
        assert times == [0.0, 1.0, 2.0, 3.0]

    def test_start_after_offsets_first_tick(self):
        sim = Simulator()
        times = []
        Process(sim, period=1.0, tick=lambda: times.append(sim.now),
                start_after=0.5)
        sim.run(until=2.6)
        assert times == [0.5, 1.5, 2.5]

    def test_returning_false_stops(self):
        sim = Simulator()
        count = []

        def tick():
            count.append(1)
            return len(count) < 3

        process = Process(sim, period=1.0, tick=tick)
        sim.run()
        assert len(count) == 3
        assert process.stopped

    def test_stop_cancels_future_ticks(self):
        sim = Simulator()
        count = []
        process = Process(sim, period=1.0, tick=lambda: count.append(1))
        sim.at(2.5, process.stop)
        sim.run(until=10.0)
        assert len(count) == 3  # at t = 0, 1, 2

    def test_zero_period_rejected(self):
        with pytest.raises(SimError):
            Process(Simulator(), period=0.0, tick=lambda: None)


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        registry = RngRegistry(7)
        assert registry.stream("netem") is registry.stream("netem")

    def test_streams_are_reproducible_across_registries(self):
        first = RngRegistry(42).stream("jitter")
        second = RngRegistry(42).stream("jitter")
        assert [first.random() for _ in range(5)] == \
               [second.random() for _ in range(5)]

    def test_different_names_are_decorrelated(self):
        registry = RngRegistry(42)
        a = [registry.stream("a").random() for _ in range(5)]
        b = [registry.stream("b").random() for _ in range(5)]
        assert a != b

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("x").random()
        b = RngRegistry(2).stream("x").random()
        assert a != b

    def test_fork_is_deterministic(self):
        a = RngRegistry(9).fork("host-1").stream("s").random()
        b = RngRegistry(9).fork("host-1").stream("s").random()
        c = RngRegistry(9).fork("host-2").stream("s").random()
        assert a == b
        assert a != c
