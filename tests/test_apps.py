"""Application workloads: iperf, ping, HTTP, KV store, Cassandra, SMR."""

import pytest

from repro.apps import (
    CassandraCluster,
    CurlSwarm,
    HttpServer,
    KvServer,
    MemtierClient,
    Pinger,
    SmrDeployment,
    Wrk2Client,
    YcsbClient,
    run_iperf_pair,
)
from repro.apps.iperf import GOODPUT_FACTOR
from repro.baselines import BareMetalTestbed
from repro.core import EmulationEngine, EngineConfig
from repro.sim import RngRegistry
from repro.topogen import (
    aws_mesh_topology,
    point_to_point_topology,
    star_topology,
)

MBPS = 1e6


def kollaps_engine(topology, *, machines=1, sharing=True, seed=3):
    return EmulationEngine(topology, config=EngineConfig(
        machines=machines, seed=seed, enforce_bandwidth_sharing=sharing))


class TestIperf:
    def test_goodput_below_wire_rate(self):
        testbed = BareMetalTestbed(point_to_point_topology(100 * MBPS), seed=1)
        result = run_iperf_pair(testbed, "client", "server", duration=10.0)
        assert result.mean_goodput == \
            pytest.approx(result.mean_wire_rate * GOODPUT_FACTOR)

    def test_table2_style_accuracy(self):
        """Goodput lands ~4-5 % under the provisioned rate, like Table 2."""
        engine = kollaps_engine(point_to_point_topology(100 * MBPS))
        result = run_iperf_pair(engine, "client", "server", duration=10.0)
        error = result.relative_error(100 * MBPS)
        assert -0.09 < error < 0.0

    def test_udp_mode(self):
        testbed = BareMetalTestbed(point_to_point_topology(10 * MBPS), seed=1)
        result = run_iperf_pair(testbed, "client", "server", duration=5.0,
                                protocol="udp", demand=5 * MBPS)
        assert result.mean_wire_rate == pytest.approx(5 * MBPS, rel=0.02)


class TestPing:
    def test_rtt_matches_collapsed_path(self):
        engine = kollaps_engine(
            point_to_point_topology(1e9, latency=0.025), sharing=False)
        pinger = Pinger(engine.sim, engine.dataplane, "client", "server",
                        count=50, interval=0.005).start()
        engine.run(until=5.0)
        assert pinger.stats.received == 50
        assert pinger.stats.mean_rtt == pytest.approx(0.050, rel=0.02)

    def test_jitter_measured(self):
        engine = kollaps_engine(
            point_to_point_topology(1e9, latency=0.050, jitter=0.002),
            sharing=False)
        pinger = Pinger(engine.sim, engine.dataplane, "client", "server",
                        count=2000, interval=0.002).start()
        engine.run(until=10.0)
        # Jitter rides both directions: RTT sigma = sqrt(2) * end-to-end.
        assert pinger.stats.jitter == pytest.approx(0.002 * 2 ** 0.5,
                                                    rel=0.20)

    def test_loss_counted(self):
        engine = kollaps_engine(
            point_to_point_topology(1e9, latency=0.010, loss=0.2),
            sharing=False, seed=5)
        pinger = Pinger(engine.sim, engine.dataplane, "client", "server",
                        count=1000, interval=0.002).start()
        engine.run(until=10.0)
        assert pinger.stats.lost > 0
        # ``loss`` is end-to-end per direction (20 %); the echo must survive
        # both directions: 1 - 0.8^2 = 36 %.
        assert pinger.stats.loss_rate == pytest.approx(0.36, abs=0.06)


class TestHttp:
    def test_wrk2_keepalive_throughput(self):
        engine = kollaps_engine(
            point_to_point_topology(100 * MBPS, latency=0.010))
        server = HttpServer(engine.sim, engine.dataplane, "server")
        client = Wrk2Client(engine.sim, engine.dataplane, "client", server,
                            connections=20)
        engine.run(until=10.0)
        assert client.stats.completed > 100
        assert server.requests_served >= client.stats.completed

    def test_curl_slower_than_keepalive_per_request(self):
        """Fresh connections pay handshake + slow start every time."""
        def mean_latency(client_class, **kwargs):
            engine = kollaps_engine(
                point_to_point_topology(100 * MBPS, latency=0.010))
            server = HttpServer(engine.sim, engine.dataplane, "server")
            if client_class is Wrk2Client:
                client = Wrk2Client(engine.sim, engine.dataplane, "client",
                                    server, connections=1)
            else:
                client = CurlSwarm(engine.sim, engine.dataplane, ["client"],
                                   server)
            engine.run(until=10.0)
            stats = client.stats
            return sum(stats.latencies) / len(stats.latencies)

        assert mean_latency(CurlSwarm) > mean_latency(Wrk2Client) * 1.5

    def test_curl_scales_with_clients(self):
        """Figure 6: more curl clients, proportionally more throughput."""
        def throughput(client_count):
            topology = star_topology(
                ["server"] + [f"c{i}" for i in range(client_count)],
                bandwidth=100 * MBPS, latency=0.005)
            engine = kollaps_engine(topology)
            server = HttpServer(engine.sim, engine.dataplane, "server")
            swarm = CurlSwarm(engine.sim, engine.dataplane,
                              [f"c{i}" for i in range(client_count)], server)
            engine.run(until=10.0)
            return swarm.stats.throughput(10.0)

        one = throughput(1)
        four = throughput(4)
        assert four == pytest.approx(4 * one, rel=0.25)


class TestKvStore:
    def test_memtier_closed_loop(self):
        engine = kollaps_engine(
            point_to_point_topology(1e9, latency=0.002), sharing=False)
        server = KvServer(engine.sim, engine.dataplane, "server")
        client = MemtierClient(engine.sim, engine.dataplane, "client", server,
                               connections=4,
                               rng=RngRegistry(7).stream("memtier"))
        engine.run(until=5.0)
        # 4 connections, ~4 ms RTT + service: ~1000 ops/s/conn.
        assert client.stats.completed > 2000
        assert server.operations >= client.stats.completed

    def test_latency_dominated_by_rtt(self):
        engine = kollaps_engine(
            point_to_point_topology(1e9, latency=0.040), sharing=False)
        server = KvServer(engine.sim, engine.dataplane, "server")
        client = MemtierClient(engine.sim, engine.dataplane, "client", server,
                               connections=1,
                               rng=RngRegistry(7).stream("memtier"))
        engine.run(until=5.0)
        mean = sum(client.stats.latencies) / len(client.stats.latencies)
        assert mean == pytest.approx(0.080, rel=0.05)

    def test_sets_update_store(self):
        engine = kollaps_engine(point_to_point_topology(1e9), sharing=False)
        server = KvServer(engine.sim, engine.dataplane, "server")
        MemtierClient(engine.sim, engine.dataplane, "client", server,
                      connections=1, set_fraction=1.0,
                      rng=RngRegistry(7).stream("memtier"))
        engine.run(until=1.0)
        assert len(server.store) > 0


class TestCassandra:
    def geo_engine(self):
        topology = aws_mesh_topology(["frankfurt", "sydney"], 5,
                                     service_prefix="cas")
        return kollaps_engine(topology, machines=2, sharing=False)

    def replicas(self):
        return [f"cas-{region}-{index}" for index in range(4)
                for region in ("frankfurt", "sydney")]

    def test_quorum_write_waits_for_remote_region(self):
        engine = self.geo_engine()
        cluster = CassandraCluster(engine.sim, engine.dataplane,
                                   self.replicas(), replication_factor=2,
                                   write_consistency=2)
        client = YcsbClient(engine.sim, engine.dataplane, "cas-frankfurt-4",
                            cluster, "cas-frankfurt-0", threads=2,
                            read_fraction=0.0,
                            rng=RngRegistry(8).stream("ycsb"))
        engine.run(until=20.0)
        mean_update = (sum(client.stats.update_latencies) /
                       len(client.stats.update_latencies))
        # Frankfurt <-> Sydney RTT is 290 ms; replica sets interleave the
        # regions, so every quorum write crosses the ocean.
        assert mean_update > 0.250

    def test_read_one_stays_local(self):
        engine = self.geo_engine()
        cluster = CassandraCluster(engine.sim, engine.dataplane,
                                   self.replicas(), replication_factor=2,
                                   read_consistency=1)
        client = YcsbClient(engine.sim, engine.dataplane, "cas-frankfurt-4",
                            cluster, "cas-frankfurt-0", threads=2,
                            read_fraction=1.0,
                            rng=RngRegistry(8).stream("ycsb"))
        engine.run(until=20.0)
        mean_read = (sum(client.stats.read_latencies) /
                     len(client.stats.read_latencies))
        assert mean_read < 0.100

    def test_replica_placement_ring(self):
        engine = self.geo_engine()
        cluster = CassandraCluster(engine.sim, engine.dataplane,
                                   self.replicas(), replication_factor=2)
        owners = cluster.replicas_for(3)
        assert len(owners) == 2
        assert owners[0] != owners[1]

    def test_invalid_consistency_rejected(self):
        engine = self.geo_engine()
        with pytest.raises(ValueError):
            CassandraCluster(engine.sim, engine.dataplane, self.replicas(),
                             replication_factor=2, write_consistency=3)


class TestSmr:
    def deployment(self, protocol):
        regions = ["virginia", "oregon", "ireland", "saopaulo", "sydney"]
        topology = aws_mesh_topology(regions, 2, service_prefix="n")
        engine = kollaps_engine(topology, machines=5, sharing=False)
        replicas = [f"n-{region}-0" for region in regions]
        smr = SmrDeployment(engine.sim, engine.dataplane, replicas,
                            protocol=protocol, leader="n-virginia-0")
        return engine, smr, regions

    def test_bftsmart_latency_ordering(self):
        """Clients co-located with the leader see the lowest latency."""
        engine, smr, regions = self.deployment("bftsmart")
        stats = {region: smr.run_client(f"n-{region}-1", operations=30)
                 for region in regions}
        engine.run(until=120.0)
        assert all(len(stats[region].latencies) == 30 for region in regions)
        assert stats["virginia"].percentile(0.5) < \
            stats["sydney"].percentile(0.5)

    def test_wheat_faster_than_bftsmart(self):
        """Wheat's weighted quorums cut ordering latency (Figure 9)."""
        results = {}
        for protocol in ("bftsmart", "wheat"):
            engine, smr, regions = self.deployment(protocol)
            stats = smr.run_client("n-ireland-1", operations=30)
            engine.run(until=120.0)
            results[protocol] = stats.percentile(0.5)
        assert results["wheat"] < results["bftsmart"]

    def test_unknown_protocol_rejected(self):
        engine, smr, _ = self.deployment("bftsmart")
        with pytest.raises(ValueError):
            SmrDeployment(engine.sim, engine.dataplane, ["a"], protocol="pbft")
