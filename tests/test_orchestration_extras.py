"""Tests for the YAML emitters and the discovery services."""

import pytest

from repro.orchestration import DeploymentGenerator, KOLLAPS_TAG
from repro.orchestration.discovery import (
    KubernetesDiscovery,
    ResolutionError,
    SwarmDiscovery,
)
from repro.orchestration.emitters import (
    render_compose_file,
    render_kubernetes_manifests,
    render_plan,
    to_yaml,
)
from repro.tc.ip import IpAllocator
from repro.topology import Bridge, LinkProperties, Service, Topology


def sample_topology() -> Topology:
    topology = Topology("emit")
    topology.add_service(Service("client", image="iperf"))
    topology.add_service(Service("web", image="nginx", replicas=3))
    topology.add_bridge(Bridge("s1"))
    topology.add_link("client", "s1", LinkProperties(bandwidth=1e9))
    topology.add_link("s1", "web", LinkProperties(bandwidth=1e9))
    return topology


class TestYamlSerializer:
    def test_scalar_types(self):
        text = to_yaml({"a": 1, "b": 1.5, "c": True, "d": False,
                        "e": None, "f": "plain", "g": "needs: quoting"})
        assert "a: 1" in text
        assert "b: 1.5" in text
        assert "c: true" in text
        assert "d: false" in text
        assert "e: null" in text
        assert "f: plain" in text
        assert 'g: "needs: quoting"' in text

    def test_ambiguous_strings_quoted(self):
        text = to_yaml({"answer": "no", "version": "3.7"})
        assert 'answer: "no"' in text
        assert 'version: "3.7"' in text

    def test_nested_structures(self):
        text = to_yaml({"top": {"inner": {"leaf": "x"}},
                        "items": ["one", "two"]})
        lines = text.splitlines()
        assert "top:" in lines[0]
        assert lines[1] == "  inner:"
        assert lines[2] == "    leaf: x"
        assert "- one" in text

    def test_empty_containers(self):
        text = to_yaml({"empty_map": {}, "empty_list": []})
        assert "empty_map: {}" in text
        assert "empty_list: []" in text

    def test_list_of_mappings_folds_marker(self):
        text = to_yaml({"items": [{"name": "a", "value": 1},
                                  {"name": "b", "value": 2}]})
        assert "- name: a" in text
        assert "- name: b" in text

    def test_parses_back_with_yaml_if_available(self):
        yaml = pytest.importorskip("yaml")
        document = {
            "version": "3.7",
            "services": {"web": {"image": "nginx",
                                 "deploy": {"replicas": 3},
                                 "volumes": ["/a:/b:ro"]}},
            "flags": [True, False],
        }
        assert yaml.safe_load(to_yaml(document)) == document


class TestRenderPlans:
    def test_compose_file_contents(self):
        plan = DeploymentGenerator(sample_topology()).swarm_plan(["m0", "m1"])
        text = render_compose_file(plan)
        assert "services:" in text
        assert "image: nginx" in text
        assert "kollaps-bootstrapper:" in text
        assert KOLLAPS_TAG in text

    def test_kubernetes_manifest_stream(self):
        plan = DeploymentGenerator(sample_topology()).kubernetes_plan(["m0"])
        text = render_kubernetes_manifests(plan)
        # One document per Deployment plus the DaemonSet.
        assert text.count("---") == 3
        assert "kind: DaemonSet" in text
        assert "hostPID: true" in text
        assert "NET_ADMIN" in text

    def test_render_plan_dispatch(self):
        generator = DeploymentGenerator(sample_topology())
        assert "version:" in render_plan(generator.swarm_plan(["m0"]))
        assert "kind:" in render_plan(generator.kubernetes_plan(["m0"]))

    def test_wrong_plan_type_rejected(self):
        generator = DeploymentGenerator(sample_topology())
        with pytest.raises(ValueError):
            render_compose_file(generator.kubernetes_plan(["m0"]))
        with pytest.raises(ValueError):
            render_kubernetes_manifests(generator.swarm_plan(["m0"]))

    def test_round_trip_with_yaml_if_available(self):
        yaml = pytest.importorskip("yaml")
        plan = DeploymentGenerator(sample_topology()).swarm_plan(["m0"])
        assert yaml.safe_load(render_compose_file(plan)) == plan.document


class TestSwarmDiscovery:
    def test_service_and_container_resolution(self):
        allocator = IpAllocator()
        discovery = SwarmDiscovery(sample_topology(), allocator)
        # Single-replica service resolves to its one container.
        assert discovery.resolve("client") == str(allocator.lookup("client"))
        # Replicated service: bare name gives the VIP stand-in (first task).
        assert discovery.resolve("web") == str(allocator.lookup("web.0"))
        assert discovery.resolve("web.2") == str(allocator.lookup("web.2"))

    def test_tasks_expansion(self):
        allocator = IpAllocator()
        discovery = SwarmDiscovery(sample_topology(), allocator)
        tasks = discovery.resolve_tasks("web")
        assert tasks == [str(allocator.lookup(f"web.{i}")) for i in range(3)]

    def test_unknown_name(self):
        discovery = SwarmDiscovery(sample_topology(), IpAllocator())
        with pytest.raises(ResolutionError):
            discovery.resolve("nope")
        with pytest.raises(ResolutionError):
            discovery.resolve_tasks("nope")

    def test_services_listing(self):
        discovery = SwarmDiscovery(sample_topology(), IpAllocator())
        assert discovery.services() == ["client", "web"]


class TestKubernetesDiscovery:
    def test_endpoints_carry_readiness(self):
        discovery = KubernetesDiscovery(sample_topology(), IpAllocator())
        endpoints = discovery.endpoints("web")
        assert len(endpoints) == 3
        assert all(endpoint.ready for endpoint in endpoints)

    def test_unready_endpoint_filtered(self):
        discovery = KubernetesDiscovery(sample_topology(), IpAllocator())
        discovery.set_ready("web.1", False)
        ready = discovery.ready_addresses("web")
        assert len(ready) == 2
        assert discovery.endpoints("web")[1].ready is False

    def test_readiness_flip_back(self):
        discovery = KubernetesDiscovery(sample_topology(), IpAllocator())
        discovery.set_ready("web.0", False)
        discovery.set_ready("web.0", True)
        assert len(discovery.ready_addresses("web")) == 3

    def test_unknown_container(self):
        discovery = KubernetesDiscovery(sample_topology(), IpAllocator())
        with pytest.raises(ResolutionError):
            discovery.set_ready("ghost", True)
        with pytest.raises(ResolutionError):
            discovery.endpoints("ghost")

    def test_shares_allocator_with_engine_addresses(self):
        allocator = IpAllocator()
        topology = sample_topology()
        discovery = KubernetesDiscovery(topology, allocator)
        for container in topology.container_names():
            assert str(allocator.lookup(container)) in [
                endpoint.address
                for endpoints in (discovery.endpoints(s)
                                  for s in discovery.services())
                for endpoint in endpoints]
