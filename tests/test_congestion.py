"""Congestion-loss model unit tests and properties."""

import pytest
from hypothesis import given, strategies as st

from repro.core import combine_loss, congestion_loss


class TestCongestionLoss:
    def test_within_share_no_loss(self):
        assert congestion_loss(demand=5e6, share=10e6) == 0.0

    def test_exactly_at_share_no_loss(self):
        assert congestion_loss(demand=10e6, share=10e6) == 0.0

    def test_double_demand_half_lost(self):
        assert congestion_loss(demand=20e6, share=10e6) == pytest.approx(0.5)

    def test_oversubscription_fraction(self):
        # Requesting 125 % of the share drops the excess 20 % of packets.
        assert congestion_loss(demand=12.5e6, share=10e6) == \
            pytest.approx(0.2)

    def test_zero_share_drops_everything(self):
        assert congestion_loss(demand=1e6, share=0.0) == 1.0

    def test_zero_demand_no_loss(self):
        assert congestion_loss(demand=0.0, share=1e6) == 0.0

    def test_sensitivity_scales(self):
        full = congestion_loss(20e6, 10e6, sensitivity=1.0)
        half = congestion_loss(20e6, 10e6, sensitivity=0.5)
        off = congestion_loss(20e6, 10e6, sensitivity=0.0)
        assert half == pytest.approx(full / 2)
        assert off == 0.0


class TestCombineLoss:
    def test_empty_is_zero(self):
        assert combine_loss() == 0.0

    def test_single(self):
        assert combine_loss(0.25) == pytest.approx(0.25)

    def test_independent_composition(self):
        assert combine_loss(0.1, 0.2) == pytest.approx(1 - 0.9 * 0.8)

    def test_certain_loss_dominates(self):
        assert combine_loss(0.1, 1.0, 0.2) == 1.0

    def test_out_of_range_inputs_clamped(self):
        assert combine_loss(-0.5) == 0.0
        assert combine_loss(1.5) == 1.0


@given(st.floats(min_value=0, max_value=1e12),
       st.floats(min_value=0, max_value=1e12))
def test_loss_always_a_probability(demand, share):
    assert 0.0 <= congestion_loss(demand, share) <= 1.0


@given(st.lists(st.floats(min_value=0, max_value=1), max_size=6))
def test_combined_loss_at_least_max_component(components):
    combined = combine_loss(*components)
    assert 0.0 <= combined <= 1.0
    if components:
        assert combined >= max(components) - 1e-12


@given(st.floats(min_value=1e3, max_value=1e12),
       st.floats(min_value=1e3, max_value=1e12))
def test_loss_monotone_in_demand(share, demand):
    smaller = congestion_loss(demand, share)
    larger = congestion_loss(demand * 2, share)
    assert larger >= smaller - 1e-12
