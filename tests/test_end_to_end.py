"""End-to-end journeys: description -> scenario -> emulation -> report.

Each test walks the full user path a downstream adopter would take,
crossing every public layer in one run: the description language, the
scenario DSL, the deployment generator, the engine, the applications and
the dashboard.
"""

import pytest

from repro.apps import Pinger, UdpBlaster
from repro.core import EmulationEngine, EngineConfig
from repro.dashboard import Dashboard, render_collapsed_matrix
from repro.orchestration import DeploymentGenerator, render_plan
from repro.topology import compile_scenario, parse_experiment_text

DESCRIPTION = """\
experiment:
  services:
    name: api
    image: "api-server"
    name: cache
    image: "memcached"
    name: edge
    image: "nginx"
  bridges:
    name: rack1
    name: rack2
  links:
    orig: api
    dest: rack1
    latency: 1
    up: 1Gbps
    down: 1Gbps
    orig: cache
    dest: rack1
    latency: 1
    up: 1Gbps
    down: 1Gbps
    orig: rack1
    dest: rack2
    latency: 5
    up: 100Mbps
    down: 100Mbps
    orig: edge
    dest: rack2
    latency: 1
    up: 1Gbps
    down: 1Gbps
"""

SCENARIO = """\
# degrade the inter-rack trunk, then cut and restore it
at 4 set link rack1--rack2 latency=50ms
at 8 flap link rack1--rack2 for 2
at 14 set link rack1--rack2 latency=5ms
"""


@pytest.fixture
def deployment():
    topology, schedule = parse_experiment_text(DESCRIPTION)
    for event in compile_scenario(SCENARIO, topology):
        schedule.add(event)
    engine = EmulationEngine(topology, schedule,
                             config=EngineConfig(machines=2, seed=99))
    return topology, engine


class TestJourney:
    def test_scenario_shapes_application_traffic(self, deployment):
        _topology, engine = deployment
        pinger = Pinger(engine.sim, engine.dataplane, "api", "edge",
                        count=160, interval=0.1).start()
        engine.run(until=16.5)
        rtts = pinger.stats.rtts
        # Phase 1 (0-4 s): 7 ms one way -> 14 ms RTT.
        assert rtts[10] == pytest.approx(0.014, rel=0.05)
        # Phase 2 (4-8 s): trunk at 50 ms -> 104 ms RTT.
        assert rtts[55] == pytest.approx(0.104, rel=0.05)
        # Phase 3 (8-10 s): trunk down, echoes lost.
        assert pinger.stats.lost > 10
        # Phase 5 (after 14 s): back to 14 ms.
        assert rtts[-1] == pytest.approx(0.014, rel=0.05)

    def test_bulk_flow_survives_flap(self, deployment):
        _topology, engine = deployment
        engine.start_flow("sync", "api", "edge")
        engine.run(until=16.0)
        during_flap = engine.fluid.mean_throughput("sync", 8.5, 10.0)
        recovered = engine.fluid.mean_throughput("sync", 14.0, 16.0)
        assert during_flap < 5e6
        assert recovered == pytest.approx(100e6, rel=0.15)

    def test_udp_sees_outage_as_loss(self, deployment):
        _topology, engine = deployment
        blaster = UdpBlaster(engine.sim, engine.dataplane, "cache", "edge",
                             rate=5e6)
        engine.run(until=16.0)
        assert blaster.stats.dropped > 0
        assert blaster.stats.received > 0
        # Overall loss is roughly the outage fraction (2 s of 16 s).
        assert blaster.stats.loss_rate == pytest.approx(2 / 16, abs=0.06)

    def test_dashboard_reports_the_run(self, deployment):
        _topology, engine = deployment
        engine.start_flow("sync", "api", "edge")
        engine.run(until=6.0)
        dashboard = Dashboard(engine)
        text = dashboard.render()
        assert "api" in text and "edge" in text
        assert "sync" in dashboard.render_flow_histories()
        matrix = render_collapsed_matrix(engine.current_state.collapsed)
        # The degraded trunk shows in the collapsed matrix (52 ms e2e).
        assert "52ms" in matrix

    def test_plans_render_for_the_same_description(self, deployment):
        topology, _engine = deployment
        generator = DeploymentGenerator(topology)
        compose = render_plan(generator.swarm_plan(["m0", "m1"]))
        manifests = render_plan(generator.kubernetes_plan(["m0", "m1"]))
        for name in ("api", "cache", "edge"):
            assert name in compose
            assert name in manifests
        assert "kollaps-bootstrapper" in compose
        assert "DaemonSet" in manifests
