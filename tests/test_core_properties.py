"""End-to-end property composition (§3 formulas) with property-based checks."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import compose_path
from repro.core.properties import PathProperties
from repro.topology import LinkProperties


def link(latency=0.0, bandwidth=1e9, jitter=0.0, loss=0.0):
    return LinkProperties(latency=latency, bandwidth=bandwidth,
                          jitter=jitter, loss=loss)


class TestComposePath:
    def test_empty_path_is_identity(self):
        properties = compose_path([])
        assert properties.latency == 0.0
        assert properties.loss == 0.0
        assert properties.bandwidth == float("inf")
        assert properties.hops == 0

    def test_latencies_sum(self):
        properties = compose_path([link(latency=0.010), link(latency=0.020),
                                   link(latency=0.005)])
        assert properties.latency == pytest.approx(0.035)

    def test_bandwidth_is_minimum(self):
        properties = compose_path([link(bandwidth=100e6), link(bandwidth=10e6),
                                   link(bandwidth=50e6)])
        assert properties.bandwidth == 10e6

    def test_jitter_root_sum_of_squares(self):
        properties = compose_path([link(jitter=0.003), link(jitter=0.004)])
        assert properties.jitter == pytest.approx(0.005)

    def test_loss_complement_product(self):
        properties = compose_path([link(loss=0.1), link(loss=0.2)])
        assert properties.loss == pytest.approx(1 - 0.9 * 0.8)

    def test_figure1_collapse_values(self):
        """Figure 1: c1->sv collapses to 10 Mb/s, 35 ms."""
        c1_s1 = link(latency=0.010, bandwidth=10e6)
        s1_s2 = link(latency=0.020, bandwidth=100e6)
        s2_sv = link(latency=0.005, bandwidth=50e6)
        properties = compose_path([c1_s1, s1_s2, s2_sv])
        assert properties.bandwidth == 10e6
        assert properties.latency == pytest.approx(0.035)

    def test_hops_counted(self):
        assert compose_path([link(), link(), link()]).hops == 3


class TestMergeSerial:
    def test_merge_matches_full_composition(self):
        links = [link(latency=0.01, bandwidth=5e6, jitter=0.001, loss=0.01),
                 link(latency=0.02, bandwidth=8e6, jitter=0.002, loss=0.02)]
        merged = compose_path(links[:1]).merge_serial(compose_path(links[1:]))
        full = compose_path(links)
        assert merged.latency == pytest.approx(full.latency)
        assert merged.jitter == pytest.approx(full.jitter)
        assert merged.loss == pytest.approx(full.loss)
        assert merged.bandwidth == full.bandwidth
        assert merged.hops == full.hops


# --------------------------------------------------------------------------
# Property-based invariants
# --------------------------------------------------------------------------

link_strategy = st.builds(
    link,
    latency=st.floats(min_value=0.0, max_value=1.0),
    bandwidth=st.floats(min_value=1e3, max_value=1e12),
    jitter=st.floats(min_value=0.0, max_value=0.1),
    loss=st.floats(min_value=0.0, max_value=0.99),
)


@given(st.lists(link_strategy, min_size=1, max_size=8))
def test_loss_stays_in_unit_interval(links):
    assert 0.0 <= compose_path(links).loss <= 1.0


@given(st.lists(link_strategy, min_size=1, max_size=8))
def test_bandwidth_never_exceeds_any_link(links):
    properties = compose_path(links)
    assert all(properties.bandwidth <= l.bandwidth for l in links)


@given(st.lists(link_strategy, min_size=1, max_size=8))
def test_latency_at_least_max_single_link(links):
    properties = compose_path(links)
    assert properties.latency >= max(l.latency for l in links) - 1e-12


@given(st.lists(link_strategy, min_size=2, max_size=8))
def test_adding_a_hop_never_reduces_loss(links):
    shorter = compose_path(links[:-1])
    longer = compose_path(links)
    assert longer.loss >= shorter.loss - 1e-12


@given(st.lists(link_strategy, min_size=1, max_size=6),
       st.lists(link_strategy, min_size=1, max_size=6))
def test_composition_is_associative(first, second):
    merged = compose_path(first).merge_serial(compose_path(second))
    full = compose_path(first + second)
    assert merged.latency == pytest.approx(full.latency)
    assert merged.jitter == pytest.approx(full.jitter, abs=1e-9)
    assert merged.loss == pytest.approx(full.loss, abs=1e-9)
    assert merged.bandwidth == full.bandwidth


@given(st.lists(link_strategy, min_size=1, max_size=8))
def test_jitter_bounded_by_sum_and_max(links):
    """RSS composition lies between the max and the plain sum of jitters."""
    properties = compose_path(links)
    jitters = [l.jitter for l in links]
    assert properties.jitter <= sum(jitters) + 1e-12
    assert properties.jitter >= max(jitters) - 1e-12
