"""Property-based tests for the scenario DSL compiler.

Random scenarios over a fixed topology must compile into event schedules
that (a) the snapshot pre-computation accepts, (b) preserve every
invariant the engine relies on, and (c) keep the final topology
structurally valid.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.topogen import star_topology
from repro.topology import ThunderstormError, Topology, compile_scenario

LEAVES = ["a", "b", "c", "d"]


def base_topology() -> Topology:
    return star_topology(LEAVES, bandwidth=100e6, latency=0.002)


# --------------------------------------------------------------- strategies
times = st.integers(1, 500)
leaves = st.sampled_from(LEAVES)
properties = st.sampled_from(
    ["latency=5ms", "jitter=1ms", "loss=1%", "up=10Mbps down=10Mbps",
     "latency=20ms loss=0.5%"])


@st.composite
def set_directive(draw):
    return f"at {draw(times)} set link {draw(leaves)}--hub " \
           f"{draw(properties)}"


@st.composite
def flap_directive(draw):
    return (f"at {draw(times)} flap link {draw(leaves)}--hub "
            f"for {draw(st.integers(1, 20))}")


@st.composite
def periodic_directive(draw):
    start = draw(st.integers(0, 100))
    stop = start + draw(st.integers(1, 200))
    step = draw(st.integers(1, 50))
    return (f"from {start} to {stop} every {step} set link "
            f"{draw(leaves)}--hub {draw(properties)}")


scenario_lines = st.lists(
    st.one_of(set_directive(), flap_directive(), periodic_directive()),
    min_size=1, max_size=8)


class TestScenarioProperties:
    @given(scenario_lines)
    @settings(max_examples=40, deadline=None)
    def test_compiles_and_snapshots(self, lines):
        topology = base_topology()
        script = "\n".join(lines)
        try:
            schedule = compile_scenario(script, topology)
        except ThunderstormError:
            # Random flap overlaps can legitimately conflict (flapping a
            # link that an overlapping flap already removed).
            return
        snapshots = schedule.snapshots(topology)
        # Snapshot times are the sorted distinct event times plus t=0.
        times_seen = [time for time, _topology in snapshots]
        assert times_seen == sorted(times_seen)
        assert times_seen[0] == 0.0
        event_times = sorted({event.time for event in schedule})
        assert times_seen[1:] == event_times
        # Every snapshot is structurally valid.
        for _time, snapshot in snapshots:
            snapshot.validate()

    @given(scenario_lines)
    @settings(max_examples=40, deadline=None)
    def test_base_topology_untouched(self, lines):
        topology = base_topology()
        reference = base_topology()
        try:
            compile_scenario("\n".join(lines), topology)
        except ThunderstormError:
            pass
        # Compilation replays on a shadow copy; the caller's topology
        # must never be mutated.
        assert sorted(link.key for link in topology.links()) == \
            sorted(link.key for link in reference.links())
        for link in topology.links():
            assert link.properties == \
                reference.get_link(*link.key).properties

    @given(st.lists(flap_directive(), min_size=1, max_size=4, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_flaps_restore_final_state(self, lines):
        topology = base_topology()
        try:
            schedule = compile_scenario("\n".join(lines), topology)
        except ThunderstormError:
            return
        _time, final = schedule.snapshots(topology)[-1]
        # After all flaps complete, every link is back with its original
        # bandwidth.
        for leaf in LEAVES:
            assert final.get_link(leaf, "hub").properties.bandwidth == \
                pytest.approx(100e6)

    @given(set_directive())
    @settings(max_examples=20, deadline=None)
    def test_single_set_changes_exactly_one_pair(self, line):
        topology = base_topology()
        schedule = compile_scenario(line, topology)
        _time, mutated = schedule.snapshots(topology)[-1]
        changed = 0
        for link in mutated.links():
            if link.properties != topology.get_link(*link.key).properties:
                changed += 1
        # A bidirectional set touches the two mirror links (or none if
        # the random values equal the existing ones).
        assert changed in (0, 2)
