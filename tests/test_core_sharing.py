"""RTT-aware min-max bandwidth sharing — including the Figure 8 schedule."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FlowDemand, paper_two_step_shares, rtt_aware_max_min

MBPS = 1e6

# ---------------------------------------------------------------------------
# The §5.4 experiment as pure allocation problems.  Link ids:
#   0-2: C1-3 access (50/50/10), 3-5: C4-6 access (50/50/10),
#   6: B1-B2 (50), 7: B2-B3 (100), 8-13: server access (50 each).
# ---------------------------------------------------------------------------
SECTION54_CAPACITIES = {
    0: 50 * MBPS, 1: 50 * MBPS, 2: 10 * MBPS,
    3: 50 * MBPS, 4: 50 * MBPS, 5: 10 * MBPS,
    6: 50 * MBPS, 7: 100 * MBPS,
    8: 50 * MBPS, 9: 50 * MBPS, 10: 50 * MBPS,
    11: 50 * MBPS, 12: 50 * MBPS, 13: 50 * MBPS,
}
SECTION54_FLOWS = {
    "c1": ((0, 6, 7, 8), 0.070, 50 * MBPS),
    "c2": ((1, 6, 7, 9), 0.060, 50 * MBPS),
    "c3": ((2, 6, 7, 10), 0.060, 10 * MBPS),
    "c4": ((3, 7, 11), 0.050, 50 * MBPS),
    "c5": ((4, 7, 12), 0.040, 50 * MBPS),
    "c6": ((5, 7, 13), 0.040, 10 * MBPS),
}


def section54_flows(names):
    return [FlowDemand(name, SECTION54_FLOWS[name][1], SECTION54_FLOWS[name][0],
                       path_bandwidth=SECTION54_FLOWS[name][2])
            for name in names]


class TestFigure8Schedule:
    """The analytic shares the paper reports for each arrival stage."""

    @pytest.mark.parametrize("active,expected", [
        (["c1"], [50.0]),
        (["c1", "c2"], [23.08, 26.92]),
        (["c1", "c2", "c3"], [18.46, 21.54, 10.0]),
        (["c1", "c2", "c3", "c4"], [18.46, 21.54, 10.0, 50.0]),
        (["c1", "c2", "c3", "c4", "c5"], [16.93, 19.75, 10.0, 23.70, 29.62]),
        (["c1", "c2", "c3", "c4", "c5", "c6"],
         [15.05, 17.55, 10.0, 21.07, 26.33, 10.0]),
    ])
    def test_stage_allocations(self, active, expected):
        allocation = rtt_aware_max_min(section54_flows(active),
                                       SECTION54_CAPACITIES)
        for name, value in zip(active, expected):
            assert allocation[name] / MBPS == pytest.approx(value, rel=0.01)

    def test_matches_paper_within_half_percent(self):
        """Paper-reported values for the final stage (±0.5 %: their rounding)."""
        paper_values = {"c1": 15.04, "c2": 17.55, "c3": 10.0,
                        "c4": 21.06, "c5": 26.33, "c6": 10.0}
        allocation = rtt_aware_max_min(section54_flows(list(paper_values)),
                                       SECTION54_CAPACITIES)
        for name, value in paper_values.items():
            assert allocation[name] / MBPS == pytest.approx(value, rel=0.005)

    def test_two_step_agrees_except_known_stage(self):
        """The literal two-pass heuristic matches the fixed point everywhere
        except the five-flow stage, where one redistribution pass cannot
        re-balance across B1-B2 and B2-B3 simultaneously."""
        for active in (["c1"], ["c1", "c2"], ["c1", "c2", "c3"],
                       ["c1", "c2", "c3", "c4", "c5", "c6"]):
            exact = rtt_aware_max_min(section54_flows(active),
                                      SECTION54_CAPACITIES)
            heuristic = paper_two_step_shares(section54_flows(active),
                                              SECTION54_CAPACITIES)
            for name in active:
                assert heuristic[name] == pytest.approx(exact[name], rel=0.01)


class TestBasicProperties:
    def test_single_flow_gets_bottleneck(self):
        flows = [FlowDemand("f", 0.05, (0, 1), path_bandwidth=10 * MBPS)]
        allocation = rtt_aware_max_min(flows, {0: 10 * MBPS, 1: 100 * MBPS})
        assert allocation["f"] == pytest.approx(10 * MBPS)

    def test_equal_rtts_share_equally(self):
        flows = [FlowDemand(f"f{i}", 0.05, (0,)) for i in range(4)]
        allocation = rtt_aware_max_min(flows, {0: 100 * MBPS})
        for key in allocation:
            assert allocation[key] == pytest.approx(25 * MBPS)

    def test_rtt_bias_favours_short_flows(self):
        flows = [FlowDemand("short", 0.010, (0,)),
                 FlowDemand("long", 0.030, (0,))]
        allocation = rtt_aware_max_min(flows, {0: 40 * MBPS})
        # Shares proportional to 1/RTT: 30 and 10.
        assert allocation["short"] == pytest.approx(30 * MBPS)
        assert allocation["long"] == pytest.approx(10 * MBPS)

    def test_share_formula_fraction(self):
        """Share(f) = (RTT(f) * sum(1/RTT_i))^-1 of capacity."""
        rtts = [0.070, 0.060]
        flows = [FlowDemand(f"f{i}", rtt, (0,)) for i, rtt in enumerate(rtts)]
        allocation = rtt_aware_max_min(flows, {0: 50 * MBPS})
        inverse_sum = sum(1.0 / rtt for rtt in rtts)
        for flow, rtt in zip(flows, rtts):
            expected = 50 * MBPS / (rtt * inverse_sum)
            assert allocation[flow.key] == pytest.approx(expected)

    def test_demand_caps_allocation(self):
        flows = [FlowDemand("greedy", 0.05, (0,)),
                 FlowDemand("modest", 0.05, (0,), demand=5 * MBPS)]
        allocation = rtt_aware_max_min(flows, {0: 100 * MBPS})
        assert allocation["modest"] == pytest.approx(5 * MBPS)
        # Work conservation: the greedy flow takes the rest.
        assert allocation["greedy"] == pytest.approx(95 * MBPS)

    def test_empty_flow_set(self):
        assert rtt_aware_max_min([], {0: MBPS}) == {}
        assert paper_two_step_shares([], {0: MBPS}) == {}

    def test_flow_with_no_constraints_gets_path_bandwidth(self):
        flows = [FlowDemand("f", 0.05, (), path_bandwidth=7 * MBPS)]
        allocation = rtt_aware_max_min(flows, {})
        assert allocation["f"] == pytest.approx(7 * MBPS)

    def test_unknown_link_ids_ignored(self):
        """Links absent from the capacity map (infinite capacity) don't bind."""
        flows = [FlowDemand("f", 0.05, (0, 99), path_bandwidth=20 * MBPS)]
        allocation = rtt_aware_max_min(flows, {0: 10 * MBPS})
        assert allocation["f"] == pytest.approx(10 * MBPS)


# ---------------------------------------------------------------------------
# Property-based invariants of the allocator
# ---------------------------------------------------------------------------

@st.composite
def allocation_problem(draw):
    link_count = draw(st.integers(min_value=1, max_value=6))
    capacities = {i: draw(st.floats(min_value=1 * MBPS, max_value=100 * MBPS))
                  for i in range(link_count)}
    flow_count = draw(st.integers(min_value=1, max_value=8))
    flows = []
    for index in range(flow_count):
        path_length = draw(st.integers(min_value=1, max_value=link_count))
        path = tuple(draw(st.permutations(range(link_count)))[:path_length])
        rtt = draw(st.floats(min_value=0.001, max_value=0.5))
        flows.append(FlowDemand(f"f{index}", rtt, path,
                                path_bandwidth=min(capacities[i] for i in path)))
    return flows, capacities


@settings(max_examples=60, deadline=None)
@given(allocation_problem())
def test_no_link_oversubscribed(problem):
    flows, capacities = problem
    allocation = rtt_aware_max_min(flows, capacities)
    for link_id, capacity in capacities.items():
        used = sum(allocation[f.key] for f in flows if link_id in f.links)
        assert used <= capacity * (1 + 1e-6)


@settings(max_examples=60, deadline=None)
@given(allocation_problem())
def test_every_flow_gets_positive_rate(problem):
    flows, capacities = problem
    allocation = rtt_aware_max_min(flows, capacities)
    for flow in flows:
        assert allocation[flow.key] > 0


@settings(max_examples=60, deadline=None)
@given(allocation_problem())
def test_work_conserving_on_bottlenecks(problem):
    """Every flow is capped by at least one saturated link or its own cap."""
    flows, capacities = problem
    allocation = rtt_aware_max_min(flows, capacities)
    for flow in flows:
        rate = allocation[flow.key]
        at_own_cap = rate >= min(flow.demand, flow.path_bandwidth) - 1.0
        on_saturated_link = any(
            sum(allocation[f.key] for f in flows if link_id in f.links)
            >= capacities[link_id] * (1 - 1e-6)
            for link_id in flow.links if link_id in capacities)
        assert at_own_cap or on_saturated_link


@settings(max_examples=40, deadline=None)
@given(allocation_problem())
def test_allocation_is_deterministic(problem):
    flows, capacities = problem
    first = rtt_aware_max_min(flows, capacities)
    second = rtt_aware_max_min(list(flows), dict(capacities))
    assert first == second
